// Shard-summary combiner properties (sketch/combiner.h): merge-equivalence
// within the stated bound for S shards over adversarial distributions,
// bit-identical answers regardless of shard admission order, empty-shard
// identities, type/epsilon admission rules, and tree-structured re-merge via
// the re-exported envelope.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <random>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/quantile_estimator.h"
#include "core/report.h"
#include "core/status.h"
#include "stream/generator.h"
#include "sketch/combiner.h"
#include "sketch/count_min.h"
#include "sketch/exact.h"
#include "sketch/gk_summary.h"
#include "sketch/kll.h"
#include "sketch/misra_gries.h"
#include "sketch/serialize.h"

namespace streamgpu::sketch {
namespace {

::testing::AssertionResult RankWithin(const std::vector<float>& sorted, float value,
                                      double target_rank, double allowed) {
  const auto [lo0, hi0] = ExactRankRange(sorted, value);
  const double lo = static_cast<double>(lo0) + 1;  // 1-based
  const double hi = static_cast<double>(hi0) + 1;
  if (lo - allowed <= target_rank && target_rank <= hi + allowed) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "value " << value << " has rank range [" << lo << "," << hi
         << "], target " << target_rank << " allowed +-" << allowed;
}

enum class Dist { kUniform, kZipf, kSorted, kBursty };

const char* DistName(Dist d) {
  switch (d) {
    case Dist::kUniform: return "uniform";
    case Dist::kZipf: return "zipf";
    case Dist::kSorted: return "sorted";
    case Dist::kBursty: return "bursty";
  }
  return "?";
}

std::vector<float> MakeStream(Dist dist, std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<float> v;
  v.reserve(n);
  switch (dist) {
    case Dist::kUniform: {
      std::uniform_real_distribution<float> d(0.0f, 1e6f);
      for (std::size_t i = 0; i < n; ++i) v.push_back(d(rng));
      break;
    }
    case Dist::kZipf: {
      // Harmonic weights over a 512-value universe: a few values dominate.
      std::vector<double> weights(512);
      for (std::size_t k = 0; k < weights.size(); ++k) {
        weights[k] = 1.0 / static_cast<double>(k + 1);
      }
      std::discrete_distribution<int> d(weights.begin(), weights.end());
      for (std::size_t i = 0; i < n; ++i) v.push_back(static_cast<float>(d(rng)));
      break;
    }
    case Dist::kSorted: {
      std::uniform_real_distribution<float> d(0.0f, 1e6f);
      for (std::size_t i = 0; i < n; ++i) v.push_back(d(rng));
      std::sort(v.begin(), v.end());
      break;
    }
    case Dist::kBursty: {
      // Runs of one repeated value interleaved with uniform noise.
      std::uniform_real_distribution<float> d(0.0f, 1e6f);
      std::uniform_int_distribution<int> run(1, 64);
      while (v.size() < n) {
        const float burst = d(rng);
        const int len = run(rng);
        for (int i = 0; i < len && v.size() < n; ++i) v.push_back(burst);
        if (v.size() < n) v.push_back(d(rng));
      }
      break;
    }
  }
  return v;
}

// Splits `data` into `shards` contiguous chunks (the scale-out partitioning:
// each shard ingests its own substream).
std::vector<std::vector<float>> Split(const std::vector<float>& data,
                                      std::size_t shards) {
  std::vector<std::vector<float>> out(shards);
  const std::size_t chunk = (data.size() + shards - 1) / shards;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t lo = std::min(s * chunk, data.size());
    const std::size_t hi = std::min(lo + chunk, data.size());
    out[s].assign(data.begin() + lo, data.begin() + hi);
  }
  return out;
}

std::vector<std::uint8_t> GkShardBytes(const std::vector<float>& chunk, double eps) {
  std::vector<float> sorted = chunk;
  std::sort(sorted.begin(), sorted.end());
  const GkSummary s = GkSummary::FromSorted(sorted, eps);
  std::vector<std::uint8_t> bytes;
  EXPECT_TRUE(SerializeSummary(s, &bytes).ok());
  return bytes;
}

std::vector<std::uint8_t> KllShardBytes(const std::vector<float>& chunk, double eps) {
  KllSketch s(eps);
  for (float v : chunk) s.Observe(v);
  std::vector<std::uint8_t> bytes;
  EXPECT_TRUE(SerializeSummary(s, &bytes).ok());
  return bytes;
}

struct CombineCase {
  std::size_t shards;
  Dist dist;
};

std::string CaseName(const ::testing::TestParamInfo<CombineCase>& info) {
  return std::string(DistName(info.param.dist)) + "_S" +
         std::to_string(info.param.shards);
}

class CombinerProperty : public ::testing::TestWithParam<CombineCase> {};

TEST_P(CombinerProperty, GkMergeMatchesUnionWithinStatedBound) {
  const auto& p = GetParam();
  constexpr double kEps = 0.02;
  const auto data = MakeStream(p.dist, 20000, 7 + static_cast<unsigned>(p.shards));
  QuantileShardCombiner combiner;
  for (const auto& chunk : Split(data, p.shards)) {
    ASSERT_TRUE(combiner.AddShard(GkShardBytes(chunk, kEps)).ok());
  }
  ASSERT_EQ(combiner.shards(), p.shards);

  std::vector<float> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  for (double phi : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    const core::QuantileReport r = combiner.Quantile(phi);
    EXPECT_EQ(r.window_coverage, data.size());
    EXPECT_LE(r.rank_error_bound, static_cast<std::uint64_t>(
                                      std::ceil(kEps * static_cast<double>(data.size()))));
    const double target = std::ceil(phi * static_cast<double>(data.size()));
    EXPECT_TRUE(RankWithin(sorted, r.value, target,
                           static_cast<double>(r.rank_error_bound) + 1))
        << "phi=" << phi;
  }
}

TEST_P(CombinerProperty, KllMergeMatchesUnionWithinStatedBound) {
  const auto& p = GetParam();
  constexpr double kEps = 0.02;
  const auto data = MakeStream(p.dist, 20000, 11 + static_cast<unsigned>(p.shards));
  QuantileShardCombiner combiner;
  for (const auto& chunk : Split(data, p.shards)) {
    ASSERT_TRUE(combiner.AddShard(KllShardBytes(chunk, kEps)).ok());
  }

  std::vector<float> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  for (double phi : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    const core::QuantileReport r = combiner.Quantile(phi);
    EXPECT_EQ(r.window_coverage, data.size());
    const double target = std::ceil(phi * static_cast<double>(data.size()));
    EXPECT_TRUE(RankWithin(sorted, r.value, target,
                           static_cast<double>(r.rank_error_bound) + 1))
        << "phi=" << phi;
  }
}

TEST_P(CombinerProperty, MisraGriesMergeMatchesUnionCounts) {
  const auto& p = GetParam();
  constexpr double kEps = 0.01;
  const auto data = MakeStream(p.dist, 20000, 13 + static_cast<unsigned>(p.shards));
  FrequencyShardCombiner combiner;
  for (const auto& chunk : Split(data, p.shards)) {
    MisraGries mg(kEps);
    mg.ObserveBatch(chunk);
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(SerializeSummary(mg, &bytes).ok());
    ASSERT_TRUE(combiner.AddShard(bytes).ok());
  }

  // Merged estimates undercount truth by at most the stated bound.
  auto hh = combiner.HeavyHitters(0.05);
  ASSERT_TRUE(hh.ok());
  EXPECT_EQ(hh->window_coverage, data.size());
  const std::uint64_t bound = hh->error_bound;
  EXPECT_LE(bound, static_cast<std::uint64_t>(
                       std::ceil(kEps * static_cast<double>(data.size()))));
  for (const auto& item : hh->items) {
    const std::uint64_t truth = static_cast<std::uint64_t>(
        std::count(data.begin(), data.end(), item.value));
    EXPECT_LE(item.estimate, truth);
    EXPECT_GE(item.estimate + bound, truth);
  }
  // No false negatives: everything truly above support must be reported.
  std::vector<float> uniq = data;
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  const double threshold = 0.05 * static_cast<double>(data.size());
  for (float v : uniq) {
    const auto truth = static_cast<double>(std::count(data.begin(), data.end(), v));
    if (truth >= threshold) {
      EXPECT_TRUE(std::any_of(hh->items.begin(), hh->items.end(),
                              [v](const auto& it) { return it.value == v; }))
          << "missing heavy hitter " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShardsByDistribution, CombinerProperty,
    ::testing::Values(CombineCase{2, Dist::kUniform}, CombineCase{2, Dist::kZipf},
                      CombineCase{2, Dist::kSorted}, CombineCase{2, Dist::kBursty},
                      CombineCase{16, Dist::kUniform}, CombineCase{16, Dist::kZipf},
                      CombineCase{16, Dist::kSorted}, CombineCase{16, Dist::kBursty},
                      CombineCase{64, Dist::kUniform}, CombineCase{64, Dist::kZipf},
                      CombineCase{64, Dist::kSorted}, CombineCase{64, Dist::kBursty}),
    CaseName);

// --- Merge-order independence: bit-identical regardless of AddShard order ---

TEST(CombinerOrderTest, QuantileAnswerIsBitIdenticalUnderPermutation) {
  constexpr double kEps = 0.02;
  const auto data = MakeStream(Dist::kZipf, 8000, 42);
  std::vector<std::vector<std::uint8_t>> blobs;
  for (const auto& chunk : Split(data, 16)) {
    blobs.push_back(KllShardBytes(chunk, kEps));
  }

  std::vector<std::size_t> order(blobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::mt19937 rng(99);

  QuantileShardCombiner first;
  for (std::size_t i : order) ASSERT_TRUE(first.AddShard(blobs[i]).ok());
  std::vector<std::uint8_t> first_bytes;
  ASSERT_TRUE(first.AppendMergedSummary(&first_bytes).ok());

  for (int trial = 0; trial < 4; ++trial) {
    std::shuffle(order.begin(), order.end(), rng);
    QuantileShardCombiner shuffled;
    for (std::size_t i : order) ASSERT_TRUE(shuffled.AddShard(blobs[i]).ok());
    for (double phi : {0.1, 0.5, 0.9}) {
      EXPECT_EQ(shuffled.Quantile(phi), first.Quantile(phi)) << "phi=" << phi;
    }
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(shuffled.AppendMergedSummary(&bytes).ok());
    EXPECT_EQ(bytes, first_bytes) << "trial " << trial;
  }
}

TEST(CombinerOrderTest, GkAnswerIsBitIdenticalUnderPermutation) {
  constexpr double kEps = 0.05;
  const auto data = MakeStream(Dist::kUniform, 6000, 17);
  std::vector<std::vector<std::uint8_t>> blobs;
  for (const auto& chunk : Split(data, 8)) {
    blobs.push_back(GkShardBytes(chunk, kEps));
  }

  QuantileShardCombiner forward;
  for (const auto& b : blobs) ASSERT_TRUE(forward.AddShard(b).ok());
  QuantileShardCombiner backward;
  for (auto it = blobs.rbegin(); it != blobs.rend(); ++it) {
    ASSERT_TRUE(backward.AddShard(*it).ok());
  }

  std::vector<std::uint8_t> fwd, bwd;
  ASSERT_TRUE(forward.AppendMergedSummary(&fwd).ok());
  ASSERT_TRUE(backward.AppendMergedSummary(&bwd).ok());
  EXPECT_EQ(fwd, bwd);
  EXPECT_EQ(forward.Quantile(0.5), backward.Quantile(0.5));
}

// --- Empty and degenerate shards ---

TEST(CombinerEmptyTest, NoShardsAnswersCoverageZero) {
  QuantileShardCombiner combiner;
  const core::QuantileReport r = combiner.Quantile(0.5);
  EXPECT_EQ(r.value, 0.0f);
  EXPECT_EQ(r.window_coverage, 0u);
  EXPECT_EQ(r.rank_error_bound, 0u);
  std::vector<std::uint8_t> bytes;
  EXPECT_EQ(combiner.AppendMergedSummary(&bytes).code(),
            core::Status::Code::kFailedPrecondition);

  FrequencyShardCombiner freq;
  auto hh = freq.HeavyHitters(0.1);
  ASSERT_TRUE(hh.ok());
  EXPECT_TRUE(hh->items.empty());
  EXPECT_EQ(hh->window_coverage, 0u);
  EXPECT_EQ(freq.EstimateCount(1.0f), 0u);
}

TEST(CombinerEmptyTest, AllEmptyShardsAnswerCoverageZero) {
  QuantileShardCombiner combiner;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(combiner.AddShard(KllShardBytes({}, 0.02)).ok());
  }
  const core::QuantileReport r = combiner.Quantile(0.5);
  EXPECT_EQ(r.value, 0.0f);
  EXPECT_EQ(r.window_coverage, 0u);
}

TEST(CombinerEmptyTest, EmptyShardIsMergeIdentity) {
  constexpr double kEps = 0.02;
  const auto data = MakeStream(Dist::kUniform, 4000, 23);
  const auto chunks = Split(data, 4);

  QuantileShardCombiner without;
  for (const auto& c : chunks) ASSERT_TRUE(without.AddShard(KllShardBytes(c, kEps)).ok());
  QuantileShardCombiner with;
  for (const auto& c : chunks) ASSERT_TRUE(with.AddShard(KllShardBytes(c, kEps)).ok());
  ASSERT_TRUE(with.AddShard(KllShardBytes({}, kEps)).ok());

  EXPECT_EQ(with.Quantile(0.5).window_coverage, data.size());
  std::vector<float> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const core::QuantileReport r = with.Quantile(0.5);
  EXPECT_TRUE(RankWithin(sorted, r.value, std::ceil(0.5 * sorted.size()),
                         static_cast<double>(r.rank_error_bound) + 1));
}

// --- Admission rules ---

TEST(CombinerAdmissionTest, RejectsTypeMismatch) {
  QuantileShardCombiner combiner;
  ASSERT_TRUE(combiner.AddShard(GkShardBytes({1, 2, 3}, 0.1)).ok());
  const core::Status s = combiner.AddShard(KllShardBytes({1, 2, 3}, 0.1));
  EXPECT_EQ(s.code(), core::Status::Code::kInvalidArgument);
  EXPECT_EQ(combiner.shards(), 1u);
}

TEST(CombinerAdmissionTest, RejectsNonQuantileSketch) {
  MisraGries mg(0.1);
  mg.Observe(1.0f);
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(SerializeSummary(mg, &bytes).ok());
  QuantileShardCombiner combiner;
  EXPECT_EQ(combiner.AddShard(bytes).code(), core::Status::Code::kInvalidArgument);

  FrequencyShardCombiner freq;
  EXPECT_EQ(freq.AddShard(GkShardBytes({1, 2}, 0.1)).code(),
            core::Status::Code::kInvalidArgument);
}

TEST(CombinerAdmissionTest, RejectsKllEpsilonMismatch) {
  QuantileShardCombiner combiner;
  ASSERT_TRUE(combiner.AddShard(KllShardBytes({1, 2, 3}, 0.01)).ok());
  EXPECT_EQ(combiner.AddShard(KllShardBytes({4, 5, 6}, 0.02)).code(),
            core::Status::Code::kInvalidArgument);
}

TEST(CombinerAdmissionTest, RejectsCountMinGeometryMismatch) {
  CountMinSketch a(0.01, 0.01);
  a.Update(1.0f);
  CountMinSketch b(0.02, 0.01);
  b.Update(1.0f);
  std::vector<std::uint8_t> ba, bb;
  ASSERT_TRUE(SerializeSummary(a, &ba).ok());
  ASSERT_TRUE(SerializeSummary(b, &bb).ok());
  FrequencyShardCombiner combiner;
  ASSERT_TRUE(combiner.AddShard(ba).ok());
  EXPECT_EQ(combiner.AddShard(bb).code(), core::Status::Code::kInvalidArgument);
}

TEST(CombinerAdmissionTest, RejectsMalformedBytesWithoutAborting) {
  QuantileShardCombiner combiner;
  const std::vector<std::uint8_t> garbage{0xDE, 0xAD, 0xBE, 0xEF, 0x00};
  EXPECT_FALSE(combiner.AddShard(garbage).ok());
  EXPECT_EQ(combiner.shards(), 0u);
}

// --- Count-Min shards ---

TEST(CombinerCountMinTest, MergedEstimatesNeverUndercount) {
  const auto data = MakeStream(Dist::kZipf, 10000, 77);
  FrequencyShardCombiner combiner;
  for (const auto& chunk : Split(data, 8)) {
    CountMinSketch cm(0.005, 0.01);
    for (float v : chunk) cm.Update(v);
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(SerializeSummary(cm, &bytes).ok());
    ASSERT_TRUE(combiner.AddShard(bytes).ok());
  }

  // The point-query guarantee survives the element-wise merge: never an
  // undercount, overcount at most eps * N (whp — deterministic inputs here).
  for (float v : {0.0f, 1.0f, 2.0f, 10.0f, 100.0f}) {
    const std::uint64_t truth = static_cast<std::uint64_t>(
        std::count(data.begin(), data.end(), v));
    const std::uint64_t est = combiner.EstimateCount(v);
    EXPECT_GE(est, truth) << v;
    EXPECT_LE(est, truth + static_cast<std::uint64_t>(
                               std::ceil(0.005 * static_cast<double>(data.size())) * 4))
        << v;
  }
  EXPECT_EQ(combiner.HeavyHitters(0.1).status().code(),
            core::Status::Code::kFailedPrecondition);
}

// --- Tree-structured merges via the re-exported envelope ---

TEST(CombinerTreeTest, TwoLevelMergeStaysWithinBound) {
  constexpr double kEps = 0.02;
  const auto data = MakeStream(Dist::kBursty, 16000, 5);
  const auto chunks = Split(data, 8);

  // Leaves: two combiners of four shards each; root merges their exports.
  std::vector<std::uint8_t> left_bytes, right_bytes;
  QuantileShardCombiner left, right;
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(left.AddShard(KllShardBytes(chunks[i], kEps)).ok());
    ASSERT_TRUE(right.AddShard(KllShardBytes(chunks[4 + i], kEps)).ok());
  }
  ASSERT_TRUE(left.AppendMergedSummary(&left_bytes).ok());
  ASSERT_TRUE(right.AppendMergedSummary(&right_bytes).ok());

  QuantileShardCombiner root;
  ASSERT_TRUE(root.AddShard(left_bytes).ok());
  ASSERT_TRUE(root.AddShard(right_bytes).ok());

  std::vector<float> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  for (double phi : {0.1, 0.5, 0.9}) {
    const core::QuantileReport r = root.Quantile(phi);
    EXPECT_EQ(r.window_coverage, data.size());
    EXPECT_TRUE(RankWithin(sorted, r.value,
                           std::ceil(phi * static_cast<double>(data.size())),
                           static_cast<double>(r.rank_error_bound) + 1))
        << "phi=" << phi;
  }
}

TEST(CombinerRestoreTest, RestoredShardMergesIdenticallyToPreCrashExport) {
  // A shard that crashed and restored from its checkpoint must be
  // indistinguishable downstream: its mergeable export is byte-identical to
  // the pre-crash estimator's, so any merge containing it is bit-identical
  // too (docs/DURABILITY.md).
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "combiner_restore";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  stream::StreamGenerator gen(
      {.distribution = stream::Distribution::kZipf, .seed = 41});
  const std::vector<float> shard_a = gen.Take(8000);
  const std::vector<float> shard_b = gen.Take(8000);

  core::Options opt;
  opt.epsilon = 0.01;
  opt.checkpoint_dir = dir.string();
  auto original = core::QuantileEstimator::Create(opt);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE((*original)->ObserveBatch(shard_a).ok());
  ASSERT_TRUE((*original)->Checkpoint().ok());
  ASSERT_TRUE((*original)->Flush().ok());
  const auto pre_crash = (*original)->SerializedSummary();
  ASSERT_TRUE(pre_crash.ok());

  auto restored = core::QuantileEstimator::Restore(opt);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  ASSERT_TRUE((*restored)->Flush().ok());
  const auto post_crash = (*restored)->SerializedSummary();
  ASSERT_TRUE(post_crash.ok());
  EXPECT_EQ(*post_crash, *pre_crash);

  // And the merge over {restored shard, healthy shard} answers exactly as
  // the merge over {pre-crash shard, healthy shard}.
  core::Options plain = opt;
  plain.checkpoint_dir.clear();
  auto other = core::QuantileEstimator::Create(plain);
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE((*other)->ObserveBatch(shard_b).ok());
  ASSERT_TRUE((*other)->Flush().ok());
  const auto other_bytes = (*other)->SerializedSummary();
  ASSERT_TRUE(other_bytes.ok());

  QuantileShardCombiner with_pre_crash;
  ASSERT_TRUE(with_pre_crash.AddShard(*pre_crash).ok());
  ASSERT_TRUE(with_pre_crash.AddShard(*other_bytes).ok());
  QuantileShardCombiner with_restored;
  ASSERT_TRUE(with_restored.AddShard(*post_crash).ok());
  ASSERT_TRUE(with_restored.AddShard(*other_bytes).ok());
  for (double phi : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(with_restored.Quantile(phi), with_pre_crash.Quantile(phi))
        << "phi=" << phi;
  }
}

}  // namespace
}  // namespace streamgpu::sketch
