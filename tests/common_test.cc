// Tests for the common utilities (common/): check macros, environment
// helpers, and the stopwatch.

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/env.h"
#include "common/timer.h"

namespace streamgpu {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  STREAMGPU_CHECK(1 + 1 == 2);
  STREAMGPU_CHECK_MSG(true, "never shown");
  SUCCEED();
}

TEST(CheckTest, FailingCheckAborts) {
  EXPECT_DEATH(STREAMGPU_CHECK(false), "CHECK failed");
  EXPECT_DEATH(STREAMGPU_CHECK_MSG(false, "context here"), "context here");
}

TEST(EnvTest, ParsesDoubles) {
  ::setenv("STREAMGPU_TEST_D", "2.5", 1);
  EXPECT_EQ(GetEnvDouble("STREAMGPU_TEST_D", 1.0), 2.5);
  ::setenv("STREAMGPU_TEST_D", "garbage", 1);
  EXPECT_EQ(GetEnvDouble("STREAMGPU_TEST_D", 1.0), 1.0);
  ::unsetenv("STREAMGPU_TEST_D");
  EXPECT_EQ(GetEnvDouble("STREAMGPU_TEST_D", 7.0), 7.0);
}

TEST(EnvTest, ParsesLongs) {
  ::setenv("STREAMGPU_TEST_L", "42", 1);
  EXPECT_EQ(GetEnvLong("STREAMGPU_TEST_L", 0), 42);
  ::setenv("STREAMGPU_TEST_L", "", 1);
  EXPECT_EQ(GetEnvLong("STREAMGPU_TEST_L", 9), 9);
  ::unsetenv("STREAMGPU_TEST_L");
}

TEST(EnvTest, BenchScaleDefaultsToOne) {
  ::unsetenv("STREAMGPU_SCALE");
  EXPECT_EQ(BenchScale(), 1.0);
  ::setenv("STREAMGPU_SCALE", "8", 1);
  EXPECT_EQ(BenchScale(), 8.0);
  ::unsetenv("STREAMGPU_SCALE");
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  (void)sink;
  const double s = t.ElapsedSeconds();
  EXPECT_GE(s, 0.0);
  EXPECT_LT(s, 10.0);
  EXPECT_NEAR(t.ElapsedMillis(), t.ElapsedSeconds() * 1e3, 1.0);
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace streamgpu
