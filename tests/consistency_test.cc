// Consistency and soak tests: behaviors that must hold across call patterns
// — batch vs per-element ingestion, repeated flushes, query stability,
// top-k, long streams, and determinism across identical runs.

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/frequency_estimator.h"
#include "core/quantile_estimator.h"
#include "sketch/exact.h"
#include "stream/generator.h"

namespace streamgpu::core {
namespace {

std::vector<float> ZipfStream(std::size_t n, unsigned seed) {
  stream::StreamGenerator gen({.distribution = stream::Distribution::kZipf,
                               .seed = seed,
                               .domain_size = 500});
  return gen.Take(n);
}

TEST(ConsistencyTest, BatchAndPerElementIngestionAgree) {
  const auto stream = ZipfStream(20000, 1);
  Options opt;
  opt.epsilon = 0.005;
  opt.backend = Backend::kGpuPbsn;

  FrequencyEstimator batched(opt);
  batched.ObserveBatch(stream);
  batched.Flush();

  FrequencyEstimator elementwise(opt);
  for (float v : stream) elementwise.Observe(v);
  elementwise.Flush();

  EXPECT_EQ(batched.HeavyHitters(0.02), elementwise.HeavyHitters(0.02));
  EXPECT_EQ(batched.summary_size(), elementwise.summary_size());
  for (float v : {0.0f, 1.0f, 7.0f, 100.0f}) {
    EXPECT_EQ(batched.EstimateCount(v), elementwise.EstimateCount(v)) << v;
  }
}

TEST(ConsistencyTest, FlushIsIdempotent) {
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kCpuStdSort;
  FrequencyEstimator fe(opt);
  fe.ObserveBatch(ZipfStream(555, 2));
  fe.Flush();
  const auto once = fe.HeavyHitters(0.05);
  const auto n = fe.processed_length();
  fe.Flush();
  fe.Flush();
  EXPECT_EQ(fe.HeavyHitters(0.05), once);
  EXPECT_EQ(fe.processed_length(), n);
}

TEST(ConsistencyTest, QueriesAreStableBetweenObservations) {
  // Querying must not mutate state: two identical queries in a row agree,
  // and interleaved queries don't disturb ingestion.
  const auto stream = ZipfStream(30000, 3);
  Options opt;
  opt.epsilon = 0.005;
  opt.backend = Backend::kGpuPbsn;

  FrequencyEstimator straight(opt);
  straight.ObserveBatch(stream);
  straight.Flush();

  FrequencyEstimator interleaved(opt);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    interleaved.Observe(stream[i]);
    if (i % 5000 == 0) {
      (void)interleaved.HeavyHitters(0.05);
      (void)interleaved.EstimateCount(1.0f);
    }
  }
  interleaved.Flush();
  EXPECT_EQ(straight.HeavyHitters(0.02), interleaved.HeavyHitters(0.02));
}

TEST(ConsistencyTest, DeterministicAcrossRuns) {
  const auto stream = ZipfStream(25000, 4);
  std::vector<double> sims;
  std::vector<float> medians;
  for (int run = 0; run < 2; ++run) {
    Options opt;
    opt.epsilon = 0.01;
    opt.backend = Backend::kGpuPbsn;
    QuantileEstimator qe(opt);
    qe.ObserveBatch(stream);
    qe.Flush();
    sims.push_back(qe.SimulatedSeconds());
    medians.push_back(qe.Quantile(0.5).value);
  }
  EXPECT_EQ(sims[0], sims[1]);      // simulated time is count-derived
  EXPECT_EQ(medians[0], medians[1]);
}

TEST(ConsistencyTest, TopKOrderingAndTruncation) {
  const auto stream = ZipfStream(50000, 5);
  Options opt;
  opt.epsilon = 0.001;
  opt.backend = Backend::kCpuQuicksort;
  FrequencyEstimator fe(opt);
  fe.ObserveBatch(stream);
  fe.Flush();

  const FrequencyReport top5 = fe.TopK(5);
  ASSERT_EQ(top5.items.size(), 5u);
  for (std::size_t i = 1; i < top5.items.size(); ++i) {
    EXPECT_GE(top5.items[i - 1].estimate, top5.items[i].estimate);
  }
  // Zipf rank 0 dominates; with epsilon far below the frequency gaps the
  // top of the list is the true top.
  EXPECT_EQ(top5.items[0].value, 0.0f);
  EXPECT_EQ(top5.items[1].value, 1.0f);

  const FrequencyReport top1 = fe.TopK(1);
  ASSERT_EQ(top1.items.size(), 1u);
  EXPECT_EQ(top1.items[0], top5.items[0]);

  // Requesting more than exist returns what the summary holds.
  EXPECT_LE(fe.TopK(1 << 20).items.size(), fe.summary_size());
}

TEST(ConsistencyTest, EmptyEstimatorBehaves) {
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kCpuStdSort;
  FrequencyEstimator fe(opt);
  fe.Flush();  // nothing buffered
  EXPECT_EQ(fe.processed_length(), 0u);
  EXPECT_TRUE(fe.HeavyHitters(0.1).items.empty());
  EXPECT_EQ(fe.EstimateCount(5.0f), 0u);
  EXPECT_TRUE(fe.TopK(3).items.empty());
}

TEST(ConsistencyTest, SoakLongStreamStaysBounded) {
  // 2M elements through the CPU pipeline: summary stays small, guarantees
  // hold at the end, costs accumulate monotonically.
  stream::StreamGenerator gen({.distribution = stream::Distribution::kZipf,
                               .seed = 6,
                               .domain_size = 2000});
  Options opt;
  opt.epsilon = 0.0005;
  opt.backend = Backend::kCpuQuicksort;
  FrequencyEstimator fe(opt);
  double last_sim = 0;
  for (int chunk = 0; chunk < 20; ++chunk) {
    // Each 100K chunk is a whole number of 2000-element windows, so
    // mid-stream queries see all ingested data without flushing (Flush() is
    // now terminal).
    EXPECT_TRUE(fe.ObserveBatch(gen.Take(100000)).ok());
    const double sim = fe.SimulatedSeconds();
    EXPECT_GE(sim, last_sim);
    last_sim = sim;
    // Space bound O((1/eps) log(eps N)).
    EXPECT_LT(fe.summary_size(), 100000u);
  }
  fe.Flush();
  EXPECT_EQ(fe.processed_length(), 2000000u);
  const FrequencyReport hitters = fe.HeavyHitters(0.01);
  EXPECT_FALSE(hitters.items.empty());
  for (const auto& [value, est] : hitters.items) {
    EXPECT_GE(est, static_cast<std::uint64_t>((0.01 - 0.0005) * 2000000)) << value;
  }
}

TEST(ConsistencyTest, SlidingQueriesConsistentWithCoveredSpan) {
  // A window query for W' <= W never reports more mass than the full-window
  // query.
  const auto stream = ZipfStream(60000, 7);
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kGpuPbsn;
  opt.sliding_window = 20000;
  FrequencyEstimator fe(opt);
  fe.ObserveBatch(stream);
  fe.Flush();
  for (float v : {0.0f, 1.0f, 5.0f}) {
    const auto full = fe.EstimateCount(v);
    const auto half = fe.EstimateCount(v, 10000);
    const auto quarter = fe.EstimateCount(v, 5000);
    EXPECT_LE(half, full) << v;
    EXPECT_LE(quarter, half) << v;
  }
}

}  // namespace
}  // namespace streamgpu::core
