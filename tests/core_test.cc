// Tests for the public API (core/): estimator configuration, backend
// equivalence, and cost accounting.

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/frequency_estimator.h"
#include "core/quantile_estimator.h"
#include "core/stream_miner.h"
#include "sketch/exact.h"
#include "stream/generator.h"

namespace streamgpu::core {
namespace {

std::vector<float> TestStream(std::size_t n, unsigned seed, int domain = 300) {
  stream::StreamGenerator gen({.distribution = stream::Distribution::kZipf,
                               .seed = seed,
                               .domain_size = static_cast<std::uint32_t>(domain)});
  return gen.Take(n);
}

TEST(SortEngineTest, GpuBackendsOwnADevice) {
  Options gpu_opt;
  gpu_opt.backend = Backend::kGpuPbsn;
  SortEngine gpu_engine(gpu_opt);
  EXPECT_TRUE(gpu_engine.is_gpu());
  EXPECT_NE(gpu_engine.device(), nullptr);
  EXPECT_EQ(gpu_engine.batch_windows(), 4);

  Options cpu_opt;
  cpu_opt.backend = Backend::kCpuQuicksort;
  SortEngine cpu_engine(cpu_opt);
  EXPECT_FALSE(cpu_engine.is_gpu());
  EXPECT_EQ(cpu_engine.device(), nullptr);
  EXPECT_EQ(cpu_engine.batch_windows(), 1);
}

TEST(FrequencyEstimatorTest, WindowDefaultsToInverseEpsilon) {
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kCpuStdSort;
  FrequencyEstimator fe(opt);
  // 100-element windows: after 100 observations one window is processed.
  for (int i = 0; i < 100; ++i) fe.Observe(1.0f);
  EXPECT_EQ(fe.processed_length(), 100u);
  EXPECT_EQ(fe.EstimateCount(1.0f), 100u);
}

TEST(FrequencyEstimatorTest, GpuBuffersFourWindows) {
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kGpuPbsn;
  FrequencyEstimator fe(opt);
  for (int i = 0; i < 399; ++i) fe.Observe(1.0f);
  EXPECT_EQ(fe.processed_length(), 0u);  // still buffering (4 windows x 100)
  fe.Observe(1.0f);
  EXPECT_EQ(fe.processed_length(), 400u);
}

TEST(FrequencyEstimatorTest, FlushProcessesPartialWindow) {
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kCpuStdSort;
  FrequencyEstimator fe(opt);
  for (int i = 0; i < 42; ++i) fe.Observe(2.0f);
  EXPECT_EQ(fe.processed_length(), 0u);
  fe.Flush();
  EXPECT_EQ(fe.processed_length(), 42u);
  EXPECT_EQ(fe.EstimateCount(2.0f), 42u);
  EXPECT_EQ(fe.observed_length(), 42u);
}

TEST(FrequencyEstimatorTest, AllBackendsAgreeOnIntegerStreams) {
  // Integer-valued data below 2048 is exact in binary16, so the fp16 GPU
  // path must produce identical summaries to the CPU paths.
  const auto stream = TestStream(30000, 5);
  std::vector<FrequencyReport> results;
  for (Backend b : {Backend::kGpuPbsn, Backend::kGpuBitonic, Backend::kCpuQuicksort,
                    Backend::kCpuStdSort}) {
    Options opt;
    opt.epsilon = 0.005;
    opt.backend = b;
    FrequencyEstimator fe(opt);
    fe.ObserveBatch(stream);
    fe.Flush();
    results.push_back(fe.HeavyHitters(0.02));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "backend " << i;
  }
}

TEST(FrequencyEstimatorTest, CostsArePopulated) {
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kGpuPbsn;
  FrequencyEstimator fe(opt);
  fe.ObserveBatch(TestStream(5000, 6));
  fe.Flush();
  const PipelineCosts& costs = fe.costs();
  EXPECT_GT(costs.sort.simulated_seconds, 0.0);
  EXPECT_GT(costs.sort.sim_transfer_seconds, 0.0);
  EXPECT_GT(costs.histogram_elements, 0u);
  EXPECT_GT(costs.merged_entries, 0u);
  EXPECT_GT(fe.SimulatedSeconds(), costs.sort.simulated_seconds);
}

TEST(FrequencyEstimatorTest, SlidingModeTracksRecentWindow) {
  Options opt;
  opt.epsilon = 0.02;
  opt.backend = Backend::kGpuPbsn;
  opt.sliding_window = 5000;
  FrequencyEstimator fe(opt);
  EXPECT_TRUE(fe.sliding());

  std::vector<float> stream;
  stream.insert(stream.end(), 10000, 1.0f);
  stream.insert(stream.end(), 10000, 2.0f);
  fe.ObserveBatch(stream);
  fe.Flush();
  EXPECT_EQ(fe.EstimateCount(1.0f), 0u);
  EXPECT_GT(fe.EstimateCount(2.0f), 4000u);
}

TEST(QuantileEstimatorTest, MedianOfKnownDistribution) {
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kCpuStdSort;
  QuantileEstimator qe(opt);
  // 0..9999 once each: the median is ~5000.
  std::vector<float> stream(10000);
  for (std::size_t i = 0; i < stream.size(); ++i) stream[i] = static_cast<float>(i);
  std::mt19937 rng(7);
  std::shuffle(stream.begin(), stream.end(), rng);
  qe.ObserveBatch(stream);
  qe.Flush();
  EXPECT_NEAR(qe.Quantile(0.5).value, 5000.0f, 0.01 * 10000 + 1);
  EXPECT_NEAR(qe.Quantile(0.9).value, 9000.0f, 0.01 * 10000 + 1);
  EXPECT_EQ(qe.processed_length(), 10000u);
}

TEST(QuantileEstimatorTest, AllBackendsWithinEpsilon) {
  const auto stream = TestStream(40000, 8, 2000);
  std::vector<float> sorted(stream);
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(stream.size());
  for (Backend b : {Backend::kGpuPbsn, Backend::kCpuQuicksort}) {
    Options opt;
    opt.epsilon = 0.01;
    opt.backend = b;
    QuantileEstimator qe(opt);
    qe.ObserveBatch(stream);
    qe.Flush();
    for (double phi : {0.1, 0.5, 0.9}) {
      const float q = qe.Quantile(phi).value;
      const auto [lo, hi] = sketch::ExactRankRange(sorted, q);
      const double target = std::ceil(phi * n);
      EXPECT_GE(static_cast<double>(hi) + 1 + opt.epsilon * n + 1, target)
          << BackendName(b) << " phi=" << phi;
      EXPECT_LE(static_cast<double>(lo) + 1 - opt.epsilon * n - 1, target)
          << BackendName(b) << " phi=" << phi;
    }
  }
}

TEST(QuantileEstimatorTest, SlidingModeFollowsShift) {
  Options opt;
  opt.epsilon = 0.02;
  opt.backend = Backend::kGpuPbsn;
  opt.sliding_window = 8000;
  QuantileEstimator qe(opt);
  std::vector<float> stream;
  for (int i = 0; i < 20000; ++i) stream.push_back(100.0f);
  for (int i = 0; i < 20000; ++i) stream.push_back(900.0f);
  qe.ObserveBatch(stream);
  qe.Flush();
  EXPECT_EQ(qe.Quantile(0.5).value, 900.0f);
}

TEST(QuantileEstimatorTest, CostsArePopulated) {
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kGpuPbsn;
  QuantileEstimator qe(opt);
  qe.ObserveBatch(TestStream(10000, 9));
  qe.Flush();
  EXPECT_GT(qe.costs().sort.simulated_seconds, 0.0);
  EXPECT_GT(qe.costs().histogram_elements, 0u);
  EXPECT_GT(qe.SimulatedSeconds(), 0.0);
  EXPECT_GT(qe.summary_size(), 0u);
}

TEST(StreamMinerTest, DrivesBothEstimators) {
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kCpuStdSort;
  StreamMiner miner(opt);
  const auto stream = TestStream(20000, 10);
  miner.ObserveBatch(stream);
  miner.Flush();
  EXPECT_EQ(miner.frequencies().processed_length(), 20000u);
  EXPECT_EQ(miner.quantiles().processed_length(), 20000u);
  EXPECT_FALSE(miner.frequencies().HeavyHitters(0.05).items.empty());
}

TEST(OptionsTest, InvalidEpsilonDies) {
  Options zero;
  zero.epsilon = 0.0;
  zero.backend = Backend::kCpuStdSort;
  EXPECT_DEATH(FrequencyEstimator{zero}, "epsilon");
  EXPECT_DEATH(QuantileEstimator{zero}, "epsilon");
  Options one;
  one.epsilon = 1.0;
  one.backend = Backend::kCpuStdSort;
  EXPECT_DEATH(FrequencyEstimator{one}, "epsilon");
  Options negative;
  negative.epsilon = -0.5;
  negative.backend = Backend::kCpuStdSort;
  EXPECT_DEATH(QuantileEstimator{negative}, "epsilon");
}

TEST(OptionsTest, BackendNames) {
  EXPECT_STREQ(BackendName(Backend::kGpuPbsn), "gpu-pbsn");
  EXPECT_STREQ(BackendName(Backend::kGpuBitonic), "gpu-bitonic");
  EXPECT_STREQ(BackendName(Backend::kCpuQuicksort), "cpu-quicksort");
  EXPECT_STREQ(BackendName(Backend::kCpuStdSort), "cpu-std-sort");
}

TEST(OptionsTest, ExplicitWindowSizeHonored) {
  Options opt;
  opt.epsilon = 0.01;
  opt.window_size = 50;
  opt.backend = Backend::kCpuStdSort;
  FrequencyEstimator fe(opt);
  for (int i = 0; i < 50; ++i) fe.Observe(3.0f);
  EXPECT_EQ(fe.processed_length(), 50u);
}

TEST(OptionsValidateTest, DefaultsAreValid) {
  EXPECT_TRUE(Options{}.Validate().ok());
}

TEST(OptionsValidateTest, RejectsEpsilonOutsideUnitInterval) {
  for (double bad : {0.0, 1.0, -0.5, 2.0}) {
    Options opt;
    opt.epsilon = bad;
    const Status status = opt.Validate();
    EXPECT_EQ(status.code(), Status::Code::kInvalidArgument) << bad;
    EXPECT_NE(status.message().find("epsilon"), std::string::npos);
  }
}

TEST(OptionsValidateTest, RejectsBadWorkerCounts) {
  Options opt;
  opt.num_sort_workers = 0;
  EXPECT_EQ(opt.Validate().code(), Status::Code::kInvalidArgument);
  opt.num_sort_workers = -3;
  EXPECT_EQ(opt.Validate().code(), Status::Code::kInvalidArgument);
  opt.num_sort_workers = 4096;
  EXPECT_EQ(opt.Validate().code(), Status::Code::kInvalidArgument);
  opt.num_sort_workers = 8;
  EXPECT_TRUE(opt.Validate().ok());
  opt.max_windows_in_flight = -1;
  EXPECT_EQ(opt.Validate().code(), Status::Code::kInvalidArgument);
}

TEST(OptionsValidateTest, RejectsWindowWiderThanSlidingBlock) {
  Options opt;
  opt.epsilon = 0.01;
  opt.sliding_window = 10000;  // block size = epsilon*W/2 = 50
  opt.window_size = 51;
  const Status status = opt.Validate();
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(status.message().find("block size"), std::string::npos);
  opt.window_size = 50;
  EXPECT_TRUE(opt.Validate().ok());

  // sliding_window < window_size is a special case of the same rule.
  Options inverted;
  inverted.epsilon = 0.01;
  inverted.sliding_window = 100;
  inverted.window_size = 200;
  EXPECT_EQ(inverted.Validate().code(), Status::Code::kInvalidArgument);
}

TEST(OptionsValidateTest, RejectsExpectedRangeBeyondBinary16OnGpu) {
  Options opt;
  opt.backend = Backend::kGpuPbsn;  // gpu_format defaults to kFloat16
  opt.expected_min_value = -1e6f;
  opt.expected_max_value = 1e6f;
  const Status status = opt.Validate();
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(status.message().find("binary16"), std::string::npos);

  // In-range expectations, a 32-bit surface, or a CPU backend are all fine.
  opt.expected_max_value = 65504.0f;
  opt.expected_min_value = -65504.0f;
  EXPECT_TRUE(opt.Validate().ok());
  opt.expected_max_value = 1e6f;
  opt.expected_min_value = -1e6f;
  opt.gpu_format = gpu::Format::kFloat32;
  EXPECT_TRUE(opt.Validate().ok());
  opt.gpu_format = gpu::Format::kFloat16;
  opt.backend = Backend::kCpuStdSort;
  EXPECT_TRUE(opt.Validate().ok());

  // An inverted range is rejected regardless of backend.
  opt.expected_min_value = 10.0f;
  opt.expected_max_value = -10.0f;
  EXPECT_EQ(opt.Validate().code(), Status::Code::kInvalidArgument);
}

TEST(CreateTest, ReturnsErrorInsteadOfAborting) {
  Options bad;
  bad.epsilon = 0.0;
  EXPECT_FALSE(FrequencyEstimator::Create(bad).ok());
  EXPECT_FALSE(QuantileEstimator::Create(bad).ok());
  EXPECT_FALSE(StreamMiner::Create(bad).ok());
  EXPECT_EQ(StreamMiner::Create(bad).status().code(),
            Status::Code::kInvalidArgument);
}

TEST(CreateTest, FrequencyCapsWholeHistoryWindowButQuantileDoesNot) {
  // ceil(1/epsilon) = 100: wider whole-history windows overflow the
  // frequency sketch's bucket width but are legal for the quantile summary.
  Options opt;
  opt.epsilon = 0.01;
  opt.window_size = 1024;
  opt.backend = Backend::kCpuStdSort;
  const auto fe = FrequencyEstimator::Create(opt);
  ASSERT_FALSE(fe.ok());
  EXPECT_NE(fe.status().message().find("ceil(1/epsilon)"), std::string::npos);
  EXPECT_TRUE(QuantileEstimator::Create(opt).ok());
  EXPECT_FALSE(StreamMiner::Create(opt).ok());  // union of both rule sets
}

TEST(CreateTest, OkPathYieldsWorkingEstimators) {
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kCpuStdSort;
  auto miner = StreamMiner::Create(opt);
  ASSERT_TRUE(miner.ok());
  ASSERT_NE(*miner, nullptr);
  for (int i = 0; i < 200; ++i) EXPECT_TRUE((*miner)->Observe(7.0f).ok());
  (*miner)->Flush();
  EXPECT_EQ((*miner)->frequencies().EstimateCount(7.0f), 200u);
  EXPECT_EQ((*miner)->quantiles().Quantile(0.5).value, 7.0f);
}

TEST(LifecycleTest, FlushIsIdempotent) {
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kCpuStdSort;
  FrequencyEstimator fe(opt);
  for (int i = 0; i < 42; ++i) fe.Observe(2.0f);
  EXPECT_FALSE(fe.finalized());
  fe.Flush();
  EXPECT_TRUE(fe.finalized());
  const FrequencyReport first = fe.HeavyHitters(0.5);
  fe.Flush();  // no-op: nothing double-counted
  fe.Flush();
  EXPECT_EQ(fe.processed_length(), 42u);
  EXPECT_EQ(fe.HeavyHitters(0.5), first);
}

TEST(LifecycleTest, ObserveAfterFlushFails) {
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kCpuStdSort;
  QuantileEstimator qe(opt);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(qe.Observe(1.0f).ok());
  qe.Flush();
  const Status status = qe.Observe(2.0f);
  EXPECT_EQ(status.code(), Status::Code::kFailedPrecondition);
  EXPECT_NE(status.message().find("finalized"), std::string::npos);
  const std::vector<float> more = {3.0f, 4.0f};
  EXPECT_EQ(qe.ObserveBatch(more).code(), Status::Code::kFailedPrecondition);
  // The rejected elements left no trace in the summary.
  EXPECT_EQ(qe.observed_length(), 100u);
  EXPECT_EQ(qe.processed_length(), 100u);
  EXPECT_EQ(qe.Quantile(0.5).value, 1.0f);
}

TEST(ReportTest, CarriesErrorBoundAndCoverage) {
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kCpuStdSort;
  StreamMiner miner(opt);
  miner.ObserveBatch(TestStream(10000, 11));
  miner.Flush();
  const FrequencyReport hh = miner.frequencies().HeavyHitters(0.05);
  EXPECT_EQ(hh.stream_length, 10000u);
  EXPECT_EQ(hh.window_coverage, 10000u);
  EXPECT_EQ(hh.error_bound, 100u);  // ceil(epsilon * N)
  EXPECT_DOUBLE_EQ(hh.support, 0.05);
  EXPECT_DOUBLE_EQ(hh.epsilon, 0.01);
  // Items arrive sorted by descending estimate.
  for (std::size_t i = 1; i < hh.items.size(); ++i) {
    EXPECT_GE(hh.items[i - 1].estimate, hh.items[i].estimate);
  }
  const QuantileReport q = miner.quantiles().Quantile(0.5);
  EXPECT_EQ(q.stream_length, 10000u);
  EXPECT_EQ(q.rank_error_bound, 100u);
  EXPECT_DOUBLE_EQ(q.phi, 0.5);

  const FrequencyReport top = miner.frequencies().TopK(3);
  EXPECT_LE(top.items.size(), 3u);
  EXPECT_DOUBLE_EQ(top.support, 0.0);
}

}  // namespace
}  // namespace streamgpu::core
