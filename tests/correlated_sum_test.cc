// Property tests for the correlated-sum summary (sketch/correlated_sum.h):
// SUM(y) WHERE x <= c within epsilon * SUM(y), under construction, merge,
// and prune — plus the quantile-composed correlated aggregate of §1.2.

#include "sketch/correlated_sum.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/gk_summary.h"

namespace streamgpu::sketch {
namespace {

using Pairs = std::vector<std::pair<float, float>>;

Pairs RandomPairs(std::size_t n, unsigned seed, int x_domain = 0) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> ys(0.0f, 10.0f);
  Pairs out(n);
  if (x_domain > 0) {
    std::uniform_int_distribution<int> xs(0, x_domain - 1);
    for (auto& [x, y] : out) {
      x = static_cast<float>(xs(rng));
      y = ys(rng);
    }
  } else {
    std::uniform_real_distribution<float> xs(0.0f, 1000.0f);
    for (auto& [x, y] : out) {
      x = xs(rng);
      y = ys(rng);
    }
  }
  return out;
}

double ExactSumBelow(const Pairs& pairs, float c) {
  double s = 0;
  for (const auto& [x, y] : pairs) {
    if (x <= c) s += y;
  }
  return s;
}

void SortByX(Pairs* pairs) {
  std::sort(pairs->begin(), pairs->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

struct CsCase {
  std::size_t n;
  int x_domain;
  double eps;
};

class CorrelatedSumProperty : public ::testing::TestWithParam<CsCase> {};

TEST_P(CorrelatedSumProperty, SumBelowWithinEpsilon) {
  const CsCase& p = GetParam();
  Pairs pairs = RandomPairs(p.n, 21, p.x_domain);
  SortByX(&pairs);
  const auto s = CorrelatedSumSummary::FromSortedPairs(pairs, p.eps);
  ASSERT_EQ(s.count(), p.n);
  const double allowed = p.eps * s.total_sum() + 1e-6;
  for (float c : {-10.0f, 0.0f, 1.0f, 50.0f, 123.5f, 400.0f, 999.0f, 2000.0f}) {
    EXPECT_NEAR(s.SumBelow(c), ExactSumBelow(pairs, c), allowed) << "c=" << c;
  }
  // Thresholds equal to observed x values.
  for (std::size_t i = 0; i < p.n; i += p.n / 7 + 1) {
    const float c = pairs[i].first;
    EXPECT_NEAR(s.SumBelow(c), ExactSumBelow(pairs, c), allowed) << "data c=" << c;
  }
}

TEST_P(CorrelatedSumProperty, SpaceIsBounded) {
  const CsCase& p = GetParam();
  Pairs pairs = RandomPairs(p.n, 22, p.x_domain);
  SortByX(&pairs);
  const auto s = CorrelatedSumSummary::FromSortedPairs(pairs, p.eps);
  // ~1/(2 eps) sampled tuples plus the forced extremes and heavy runs.
  EXPECT_LE(s.size(), static_cast<std::size_t>(1.0 / p.eps) + 3);
}

TEST_P(CorrelatedSumProperty, MergePreservesGuarantee) {
  const CsCase& p = GetParam();
  Pairs a = RandomPairs(p.n, 23, p.x_domain);
  Pairs b = RandomPairs(p.n / 2 + 1, 24, p.x_domain);
  SortByX(&a);
  SortByX(&b);
  const auto merged =
      CorrelatedSumSummary::Merge(CorrelatedSumSummary::FromSortedPairs(a, p.eps),
                                  CorrelatedSumSummary::FromSortedPairs(b, p.eps));
  Pairs all = a;
  all.insert(all.end(), b.begin(), b.end());
  ASSERT_EQ(merged.count(), all.size());
  EXPECT_NEAR(merged.total_sum(), ExactSumBelow(all, 1e30f), 1e-6);

  const double allowed = merged.epsilon() * merged.total_sum() + 1e-6;
  for (float c : {0.0f, 10.0f, 100.0f, 250.0f, 500.0f, 750.0f, 999.0f}) {
    EXPECT_NEAR(merged.SumBelow(c), ExactSumBelow(all, c), allowed) << "c=" << c;
  }
}

TEST_P(CorrelatedSumProperty, ChainedMergeAndPrune) {
  const CsCase& p = GetParam();
  CorrelatedSumSummary acc;
  Pairs all;
  const std::size_t kPrune = 100;
  for (int block = 0; block < 20; ++block) {
    Pairs w = RandomPairs(p.n / 10 + 1, 30 + block, p.x_domain);
    all.insert(all.end(), w.begin(), w.end());
    SortByX(&w);
    acc = CorrelatedSumSummary::Merge(acc,
                                      CorrelatedSumSummary::FromSortedPairs(w, p.eps));
    acc = acc.Prune(kPrune);
  }
  // Pruning 20 times adds 20 * 1/(2*kPrune) = 10% relative error at most;
  // the measured epsilon() bound accounts for it.
  const double allowed = acc.epsilon() * acc.total_sum() + 1e-6;
  EXPECT_LE(acc.size(), kPrune + 3);
  for (float c : {50.0f, 200.0f, 500.0f, 900.0f}) {
    EXPECT_NEAR(acc.SumBelow(c), ExactSumBelow(all, c), allowed) << "c=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CorrelatedSumProperty,
    ::testing::Values(CsCase{5000, 0, 0.02}, CsCase{5000, 40, 0.02},
                      CsCase{20000, 0, 0.005}, CsCase{20000, 7, 0.01},
                      CsCase{1000, 3, 0.05}),
    [](const ::testing::TestParamInfo<CsCase>& info) {
      std::string name = "n";
      name += std::to_string(info.param.n);
      name += "_dom";
      name += std::to_string(info.param.x_domain);
      name += "_eps";
      name += std::to_string(static_cast<int>(1.0 / info.param.eps));
      return name;
    });

TEST(CorrelatedSumTest, EmptyAndSingleton) {
  const auto empty = CorrelatedSumSummary::FromSortedPairs({}, 0.1);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.SumBelow(5.0f), 0.0);

  const Pairs one{{3.0f, 7.5f}};
  const auto s = CorrelatedSumSummary::FromSortedPairs(one, 0.1);
  EXPECT_EQ(s.SumBelow(2.9f), 0.0);
  EXPECT_NEAR(s.SumBelow(3.0f), 7.5, 1e-9);
  EXPECT_NEAR(s.total_sum(), 7.5, 1e-9);
}

TEST(CorrelatedSumTest, ZeroMassPairsAreLegal) {
  const Pairs zeros{{1.0f, 0.0f}, {2.0f, 0.0f}, {3.0f, 0.0f}};
  const auto s = CorrelatedSumSummary::FromSortedPairs(zeros, 0.1);
  EXPECT_EQ(s.total_sum(), 0.0);
  EXPECT_EQ(s.SumBelow(2.5f), 0.0);
}

TEST(CorrelatedSumTest, RejectsNegativeMass) {
  const Pairs bad{{1.0f, -1.0f}};
  EXPECT_DEATH(CorrelatedSumSummary::FromSortedPairs(bad, 0.1), "non-negative");
}

TEST(CorrelatedSumTest, BelowMinimumIsExactZero) {
  Pairs pairs = RandomPairs(1000, 25);
  SortByX(&pairs);
  const auto s = CorrelatedSumSummary::FromSortedPairs(pairs, 0.01);
  EXPECT_EQ(s.SumBelow(pairs.front().first - 1.0f), 0.0);
  EXPECT_NEAR(s.SumBelow(pairs.back().first), s.total_sum(), 1e-6);
}

TEST(CorrelatedSumTest, QuantileComposedAggregate) {
  // The Sec. 1.2 query: "SUM(y) over the lowest phi fraction of x" —
  // compose a GK quantile summary over x with the correlated-sum summary.
  Pairs pairs = RandomPairs(20000, 26);
  SortByX(&pairs);
  std::vector<float> xs(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) xs[i] = pairs[i].first;

  const double eps = 0.005;
  const auto quantiles = GkSummary::FromSorted(xs, eps);
  const auto sums = CorrelatedSumSummary::FromSortedPairs(pairs, eps);

  for (double phi : {0.1, 0.5, 0.9}) {
    const float cutoff = quantiles.Query(phi);
    const double estimated = sums.SumBelow(cutoff);
    const double exact = ExactSumBelow(pairs, cutoff);
    EXPECT_NEAR(estimated, exact, eps * sums.total_sum() + 1e-6) << phi;
    // Sanity: the mass below the phi-quantile is roughly phi of the total
    // (x and y are independent here).
    EXPECT_NEAR(estimated / sums.total_sum(), phi, 0.05) << phi;
  }
}

}  // namespace
}  // namespace streamgpu::sketch
