// Tests for the Count-Min sketch (sketch/count_min.h) — the hash-based,
// delete-capable frequency baseline of §2.1.

#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/exact.h"

namespace streamgpu::sketch {
namespace {

std::vector<float> ZipfStream(std::size_t n, int domain, unsigned seed) {
  std::vector<double> cdf(domain);
  double total = 0;
  for (int r = 0; r < domain; ++r) {
    total += 1.0 / std::pow(r + 1.0, 1.2);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> uni(0, 1);
  std::vector<float> out(n);
  for (float& v : out) {
    v = static_cast<float>(std::lower_bound(cdf.begin(), cdf.end(), uni(rng)) -
                           cdf.begin());
  }
  return out;
}

TEST(CountMinTest, DimensionsFollowParameters) {
  CountMinSketch cm(0.01, 0.01);
  EXPECT_EQ(cm.width(), static_cast<std::size_t>(std::ceil(std::exp(1.0) / 0.01)));
  EXPECT_EQ(cm.depth(), static_cast<std::size_t>(std::ceil(std::log(100.0))));
}

TEST(CountMinTest, NeverUndercounts) {
  const auto stream = ZipfStream(50000, 500, 7);
  CountMinSketch cm(0.001, 0.01);
  cm.ObserveBatch(stream);
  EXPECT_EQ(cm.total_weight(), 50000);
  for (const auto& [value, truth] : ExactCounts(stream)) {
    EXPECT_GE(cm.EstimateCount(value), static_cast<std::int64_t>(truth)) << value;
  }
}

TEST(CountMinTest, OvercountWithinEpsilonForMostItems) {
  const auto stream = ZipfStream(100000, 2000, 8);
  const double epsilon = 0.001;
  CountMinSketch cm(epsilon, 0.01);
  cm.ObserveBatch(stream);
  const auto exact = ExactCounts(stream);
  std::size_t violations = 0;
  const double bound = epsilon * 100000;
  for (const auto& [value, truth] : exact) {
    if (static_cast<double>(cm.EstimateCount(value)) >
        static_cast<double>(truth) + bound) {
      ++violations;
    }
  }
  // Allowed failure probability is delta = 1% per item; allow 3%.
  EXPECT_LE(violations, exact.size() * 3 / 100);
}

TEST(CountMinTest, DeletesCancelInserts) {
  CountMinSketch cm(0.01, 0.01);
  for (int i = 0; i < 100; ++i) cm.Update(5.0f);
  for (int i = 0; i < 60; ++i) cm.Update(5.0f, -1);
  EXPECT_EQ(cm.EstimateCount(5.0f), 40);
  EXPECT_EQ(cm.total_weight(), 40);
}

TEST(CountMinTest, WeightedUpdates) {
  CountMinSketch cm(0.01, 0.01);
  cm.Update(1.0f, 1000);
  cm.Update(2.0f, 5);
  EXPECT_EQ(cm.EstimateCount(1.0f), 1000);
  EXPECT_GE(cm.EstimateCount(2.0f), 5);
}

TEST(CountMinTest, UnseenValuesUsuallyNearZero) {
  CountMinSketch cm(0.001, 0.01);
  for (int i = 0; i < 1000; ++i) cm.Update(static_cast<float>(i));
  // With width ~2718 and 1000 items, an unseen value's estimate is small.
  EXPECT_LE(cm.EstimateCount(99999.0f), 10);
}

TEST(CountMinTest, SignedZeroHashesConsistently) {
  CountMinSketch cm(0.01, 0.01);
  cm.Update(0.0f);
  cm.Update(-0.0f);
  EXPECT_EQ(cm.EstimateCount(0.0f), 2);
  EXPECT_EQ(cm.EstimateCount(-0.0f), 2);
}

}  // namespace
}  // namespace streamgpu::sketch
