// Tests for the DSMS load-shedding frontend (stream/dsms.h).

#include "stream/dsms.h"

#include <gtest/gtest.h>

namespace streamgpu::stream {
namespace {

StreamGenerator MakeSource(unsigned seed = 1) {
  return StreamGenerator({.distribution = Distribution::kUniform, .seed = seed});
}

// A processor with a fixed per-element service rate (elements/second).
DsmsSimulator::Processor FixedRate(double elements_per_second) {
  return [elements_per_second](std::span<const float> chunk) {
    return static_cast<double>(chunk.size()) / elements_per_second;
  };
}

TEST(DsmsTest, FastProcessorShedsNothing) {
  DsmsSimulator sim({.arrival_rate_hz = 1e6, .queue_capacity = 1 << 14,
                     .service_chunk = 1024});
  auto source = MakeSource();
  const auto r = sim.Run(&source, 200000, FixedRate(5e6));
  EXPECT_EQ(r.arrived, 200000u);
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.processed, 200000u);
  EXPECT_LT(r.utilization(), 0.5);
}

TEST(DsmsTest, OverloadedProcessorSheds) {
  DsmsSimulator sim({.arrival_rate_hz = 1e6, .queue_capacity = 4096,
                     .service_chunk = 1024});
  auto source = MakeSource();
  const auto r = sim.Run(&source, 500000, FixedRate(2.5e5));  // 4x too slow
  EXPECT_EQ(r.arrived, 500000u);
  EXPECT_GT(r.shed, 0u);
  EXPECT_EQ(r.processed + r.shed, r.arrived);
  // Sustained overload at 4x sheds ~75% once the queue fills.
  EXPECT_GT(r.shed_fraction(), 0.6);
  EXPECT_LT(r.shed_fraction(), 0.85);
}

TEST(DsmsTest, ShedFractionGrowsWithArrivalRate) {
  double previous = -1;
  for (double rate : {2e5, 4e5, 8e5, 1.6e6}) {
    DsmsSimulator sim({.arrival_rate_hz = rate, .queue_capacity = 4096,
                       .service_chunk = 512});
    auto source = MakeSource(7);
    const auto r = sim.Run(&source, 300000, FixedRate(4e5));
    EXPECT_GE(r.shed_fraction(), previous) << rate;
    previous = r.shed_fraction();
  }
  EXPECT_GT(previous, 0.5);  // 4x overload at the top of the sweep
}

TEST(DsmsTest, AccountingAlwaysBalances) {
  for (double rate : {1e5, 1e6, 1e7}) {
    DsmsSimulator sim({.arrival_rate_hz = rate, .queue_capacity = 2048,
                       .service_chunk = 777});
    auto source = MakeSource(9);
    const auto r = sim.Run(&source, 123457, FixedRate(6e5));
    EXPECT_EQ(r.processed + r.shed, r.arrived) << rate;
    EXPECT_EQ(r.arrived, 123457u) << rate;
    EXPECT_GE(r.virtual_seconds, r.busy_seconds) << rate;
  }
}

TEST(DsmsTest, QueueCapacityBoundsBurstTolerance) {
  // Same overload, bigger queue -> later shedding onset (fewer sheds for a
  // short run).
  auto run = [](std::size_t capacity) {
    DsmsSimulator sim({.arrival_rate_hz = 1e6, .queue_capacity = capacity,
                       .service_chunk = 1024});
    auto source = MakeSource(11);
    return sim.Run(&source, 100000, FixedRate(5e5)).shed;
  };
  EXPECT_GT(run(1024), run(65536));
}

TEST(DsmsTest, ProcessorSeesArrivalOrder) {
  DsmsSimulator sim({.arrival_rate_hz = 1e9, .queue_capacity = 1 << 20,
                     .service_chunk = 1000});
  auto source = MakeSource(13);
  StreamGenerator reference = MakeSource(13);
  std::vector<float> seen;
  const auto r = sim.Run(&source, 5000, [&](std::span<const float> chunk) {
    seen.insert(seen.end(), chunk.begin(), chunk.end());
    return 1e-9;
  });
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(seen, reference.Take(5000));
}

}  // namespace
}  // namespace streamgpu::stream
