// Tests for the DSMS load-shedding frontend (stream/dsms.h).

#include "stream/dsms.h"

#include <gtest/gtest.h>

namespace streamgpu::stream {
namespace {

StreamGenerator MakeSource(unsigned seed = 1) {
  return StreamGenerator({.distribution = Distribution::kUniform, .seed = seed});
}

// A processor with a fixed per-element service rate (elements/second).
DsmsSimulator::Processor FixedRate(double elements_per_second) {
  return [elements_per_second](std::span<const float> chunk) {
    return static_cast<double>(chunk.size()) / elements_per_second;
  };
}

TEST(DsmsTest, FastProcessorShedsNothing) {
  DsmsSimulator sim({.arrival_rate_hz = 1e6, .queue_capacity = 1 << 14,
                     .service_chunk = 1024});
  auto source = MakeSource();
  const auto r = sim.Run(&source, 200000, FixedRate(5e6));
  EXPECT_EQ(r.arrived, 200000u);
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.processed, 200000u);
  EXPECT_LT(r.utilization(), 0.5);
}

TEST(DsmsTest, OverloadedProcessorSheds) {
  DsmsSimulator sim({.arrival_rate_hz = 1e6, .queue_capacity = 4096,
                     .service_chunk = 1024});
  auto source = MakeSource();
  const auto r = sim.Run(&source, 500000, FixedRate(2.5e5));  // 4x too slow
  EXPECT_EQ(r.arrived, 500000u);
  EXPECT_GT(r.shed, 0u);
  EXPECT_EQ(r.processed + r.shed, r.arrived);
  // Sustained overload at 4x sheds ~75% once the queue fills.
  EXPECT_GT(r.shed_fraction(), 0.6);
  EXPECT_LT(r.shed_fraction(), 0.85);
}

TEST(DsmsTest, ShedFractionGrowsWithArrivalRate) {
  double previous = -1;
  for (double rate : {2e5, 4e5, 8e5, 1.6e6}) {
    DsmsSimulator sim({.arrival_rate_hz = rate, .queue_capacity = 4096,
                       .service_chunk = 512});
    auto source = MakeSource(7);
    const auto r = sim.Run(&source, 300000, FixedRate(4e5));
    EXPECT_GE(r.shed_fraction(), previous) << rate;
    previous = r.shed_fraction();
  }
  EXPECT_GT(previous, 0.5);  // 4x overload at the top of the sweep
}

TEST(DsmsTest, AccountingAlwaysBalances) {
  for (double rate : {1e5, 1e6, 1e7}) {
    DsmsSimulator sim({.arrival_rate_hz = rate, .queue_capacity = 2048,
                       .service_chunk = 777});
    auto source = MakeSource(9);
    const auto r = sim.Run(&source, 123457, FixedRate(6e5));
    EXPECT_EQ(r.processed + r.shed, r.arrived) << rate;
    EXPECT_EQ(r.arrived, 123457u) << rate;
    EXPECT_GE(r.virtual_seconds, r.busy_seconds) << rate;
  }
}

TEST(DsmsTest, QueueCapacityBoundsBurstTolerance) {
  // Same overload, bigger queue -> later shedding onset (fewer sheds for a
  // short run).
  auto run = [](std::size_t capacity) {
    DsmsSimulator sim({.arrival_rate_hz = 1e6, .queue_capacity = capacity,
                       .service_chunk = 1024});
    auto source = MakeSource(11);
    return sim.Run(&source, 100000, FixedRate(5e5)).shed;
  };
  EXPECT_GT(run(1024), run(65536));
}

TEST(DsmsTest, ZeroCapacityQueueShedsEverything) {
  // Degenerate but valid: nothing is ever admitted, the processor never
  // runs, and every arrival is accounted as shed.
  DsmsSimulator sim({.arrival_rate_hz = 1e6, .queue_capacity = 0,
                     .service_chunk = 1024});
  auto source = MakeSource(17);
  std::uint64_t calls = 0;
  const auto r = sim.Run(&source, 50000, [&](std::span<const float>) {
    ++calls;
    return 1e-6;
  });
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(r.arrived, 50000u);
  EXPECT_EQ(r.shed, 50000u);
  EXPECT_EQ(r.processed, 0u);
  EXPECT_DOUBLE_EQ(r.shed_fraction(), 1.0);
  EXPECT_EQ(r.busy_seconds, 0.0);
}

TEST(DsmsTest, ServiceChunkLargerThanQueueDrainsWhatIsQueued) {
  // chunk > capacity: each service step just drains the whole queue; the
  // simulation still terminates and balances.
  DsmsSimulator sim({.arrival_rate_hz = 1e6, .queue_capacity = 512,
                     .service_chunk = 4096});
  auto source = MakeSource(19);
  std::size_t max_chunk = 0;
  const auto r = sim.Run(&source, 100000, [&](std::span<const float> chunk) {
    max_chunk = std::max(max_chunk, chunk.size());
    return static_cast<double>(chunk.size()) / 5e5;
  });
  EXPECT_LE(max_chunk, 512u);
  EXPECT_EQ(r.arrived, 100000u);
  EXPECT_EQ(r.processed + r.shed, r.arrived);
  EXPECT_GT(r.processed, 0u);
}

TEST(DsmsTest, BurstyArrivalsShedMoreThanSmoothAtSameRate) {
  // Same average rate and the same modest overload; a burst larger than the
  // queue overflows it on delivery, where smooth arrivals would trickle in
  // behind the processor.
  auto shed_with_burst = [](std::size_t burst) {
    DsmsSimulator sim({.arrival_rate_hz = 1.2e6, .queue_capacity = 2048,
                       .service_chunk = 512, .burst_size = burst});
    auto source = MakeSource(23);
    return sim.Run(&source, 300000, FixedRate(1e6)).shed;
  };
  EXPECT_GT(shed_with_burst(8192), shed_with_burst(1));
}

TEST(DsmsTest, ConservationHoldsAcrossEdgeConfigs) {
  // arrived == processed + shed at completion (the queue drains before Run
  // returns), across bursty, tiny-queue, and chunk-vs-capacity extremes.
  const DsmsSimulator::Config configs[] = {
      {.arrival_rate_hz = 1e6, .queue_capacity = 0, .service_chunk = 64},
      {.arrival_rate_hz = 1e6, .queue_capacity = 1, .service_chunk = 4096},
      {.arrival_rate_hz = 3e6, .queue_capacity = 777, .service_chunk = 4096,
       .burst_size = 1000},
      {.arrival_rate_hz = 1e5, .queue_capacity = 1 << 16, .service_chunk = 1,
       .burst_size = 64},
  };
  for (const auto& config : configs) {
    DsmsSimulator sim(config);
    auto source = MakeSource(29);
    const auto r = sim.Run(&source, 54321, FixedRate(4e5));
    EXPECT_EQ(r.arrived, 54321u) << config.queue_capacity;
    EXPECT_EQ(r.processed + r.shed, r.arrived) << config.queue_capacity;
    EXPECT_GE(r.virtual_seconds, r.busy_seconds) << config.queue_capacity;
  }
}

TEST(AdmissionControllerTest, BlockPolicyAdmitsEverything) {
  AdmissionController ctl(AdmissionPolicy::kBlock, 4, /*capacity=*/16);
  EXPECT_EQ(ctl.Admit(0, 1000), 1000u);
  EXPECT_EQ(ctl.backlog(0), 1000u);
  EXPECT_EQ(ctl.total_shed(), 0u);
  ctl.OnDispatched(0, 1000);
  EXPECT_EQ(ctl.backlog(0), 0u);
}

TEST(AdmissionControllerTest, ShedPolicyCapsPerShardBacklog) {
  AdmissionController ctl(AdmissionPolicy::kShed, 2, /*capacity=*/100);
  EXPECT_EQ(ctl.Admit(0, 60), 60u);
  EXPECT_EQ(ctl.Admit(0, 60), 40u);  // only headroom admitted
  EXPECT_EQ(ctl.backlog(0), 100u);
  EXPECT_EQ(ctl.shed(0), 20u);
  // Shard 1 has independent headroom.
  EXPECT_EQ(ctl.Admit(1, 60), 60u);
  EXPECT_EQ(ctl.shed(1), 0u);
  EXPECT_EQ(ctl.total_shed(), 20u);
  // Dispatching frees headroom again.
  ctl.OnDispatched(0, 70);
  EXPECT_EQ(ctl.Admit(0, 80), 70u);
  EXPECT_EQ(ctl.total_shed(), 30u);
}

TEST(AdmissionControllerTest, ZeroCapacityShedsEveryArrival) {
  AdmissionController ctl(AdmissionPolicy::kShed, 1, /*capacity=*/0);
  EXPECT_EQ(ctl.Admit(0, 5000), 0u);
  EXPECT_EQ(ctl.backlog(0), 0u);
  EXPECT_EQ(ctl.total_shed(), 5000u);
}

TEST(DsmsTest, ProcessorSeesArrivalOrder) {
  DsmsSimulator sim({.arrival_rate_hz = 1e9, .queue_capacity = 1 << 20,
                     .service_chunk = 1000});
  auto source = MakeSource(13);
  StreamGenerator reference = MakeSource(13);
  std::vector<float> seen;
  const auto r = sim.Run(&source, 5000, [&](std::span<const float> chunk) {
    seen.insert(seen.end(), chunk.begin(), chunk.end());
    return 1e-9;
  });
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(seen, reference.Take(5000));
}

}  // namespace
}  // namespace streamgpu::stream
