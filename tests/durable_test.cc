// Tests for the durability subsystem (durable/record_log.h,
// durable/checkpoint.h, docs/DURABILITY.md): record framing round trips and
// rejection paths, the torn-write commit protocol (stray .tmp, missing
// manifest entry, torn manifest tail, corrupted-newest fallback), the
// deterministic crash points the kill-matrix harness drives, a structured
// corruption corpus over real snapshots (bit flips, truncations at every
// record boundary, duplicated records — every failure surfaces as Status,
// never a crash; the CI ASan job runs this file), and checkpoint/restore
// bit-identity for the quantile/frequency estimators and the multi-tenant
// StreamService, including quarantine and load-shed accounting.

#include "durable/checkpoint.h"

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/frequency_estimator.h"
#include "core/quantile_estimator.h"
#include "service/stream_service.h"
#include "sketch/serialize.h"
#include "sketch/wire.h"
#include "stream/generator.h"

namespace streamgpu::durable {
namespace {

namespace wire = sketch::wire;

/// A fresh, empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("durable_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::vector<float> MakeStream(std::size_t n, std::uint64_t seed) {
  stream::StreamGenerator gen(
      {.distribution = stream::Distribution::kZipf, .seed = seed});
  return gen.Take(n);
}

std::vector<std::uint8_t> ReadFile(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return bytes;
  std::fseek(f, 0, SEEK_END);
  bytes.resize(static_cast<std::size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteFile(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Overwrites the manifest with a single entry describing `snapshot_bytes`,
/// so a deliberately mutated snapshot still passes the manifest's size/CRC
/// screen and reaches the deeper validation layers.
void PointManifestAt(const std::string& dir, std::uint64_t epoch,
                     std::span<const std::uint8_t> snapshot_bytes,
                     std::uint64_t watermark) {
  std::vector<std::uint8_t> payload;
  wire::Append<std::uint64_t>(&payload, epoch);
  wire::Append<std::uint64_t>(&payload, snapshot_bytes.size());
  wire::Append<std::uint32_t>(&payload, sketch::Crc32(snapshot_bytes));
  wire::Append<std::uint64_t>(&payload, watermark);
  std::vector<std::uint8_t> record;
  AppendRecord(RecordType::kManifestEntry, payload, &record);
  WriteFile(dir + "/" + kManifestName, record);
}

// ---------------------------------------------------------------------------
// Record framing

TEST(RecordLog, RoundTripsTypedRecords) {
  std::vector<std::uint8_t> buffer;
  const std::vector<std::uint8_t> a = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> empty;
  AppendRecord(RecordType::kSnapshotHeader, a, &buffer);
  AppendRecord(RecordType::kWindowBuffer, empty, &buffer);
  AppendRecord(RecordType::kSnapshotFooter, a, &buffer);

  std::span<const std::uint8_t> cursor(buffer);
  auto first = ReadRecord(&cursor);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->type, RecordType::kSnapshotHeader);
  EXPECT_TRUE(std::equal(first->payload.begin(), first->payload.end(), a.begin()));
  auto second = ReadRecord(&cursor);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->type, RecordType::kWindowBuffer);
  EXPECT_TRUE(second->payload.empty());
  auto third = ReadRecord(&cursor);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->type, RecordType::kSnapshotFooter);
  EXPECT_TRUE(cursor.empty());
}

TEST(RecordLog, RejectsMalformedFrames) {
  std::vector<std::uint8_t> buffer;
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  AppendRecord(RecordType::kQuantileState, payload, &buffer);

  // Truncations anywhere inside the frame fail and leave the span alone.
  for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
    std::span<const std::uint8_t> cursor(buffer.data(), cut);
    const std::size_t before = cursor.size();
    EXPECT_FALSE(ReadRecord(&cursor).ok()) << "cut at " << cut;
    EXPECT_EQ(cursor.size(), before);
  }

  // A flipped bit anywhere in the frame is caught: header fields are
  // validated (magic, version, type, length) and the payload is CRC-covered.
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    std::vector<std::uint8_t> corrupt = buffer;
    corrupt[i] ^= 0x10;
    std::span<const std::uint8_t> cursor(corrupt);
    EXPECT_FALSE(ReadRecord(&cursor).ok()) << "flip at byte " << i;
  }

  // A length field claiming more than the buffer holds must not be believed.
  std::vector<std::uint8_t> oversize = buffer;
  oversize[8] = 0xFF;
  oversize[14] = 0xFF;  // len ~ 2^55: would overflow a naive offset sum
  std::span<const std::uint8_t> cursor(oversize);
  EXPECT_FALSE(ReadRecord(&cursor).ok());
}

TEST(RecordLog, NamesEveryRecordType) {
  for (std::uint16_t raw = 1; raw <= 9; ++raw) {
    EXPECT_STRNE(RecordTypeName(static_cast<RecordType>(raw)), "?");
  }
  EXPECT_STREQ(RecordTypeName(static_cast<RecordType>(0)), "?");
  EXPECT_STREQ(RecordTypeName(static_cast<RecordType>(99)), "?");
}

TEST(Codec, SnapshotHeaderRoundTrip) {
  SnapshotHeader header;
  header.mode = kSnapshotModeService;
  header.kind = 2;
  header.epsilon = 0.0125;
  header.window_size = 4096;
  header.aux = 77;
  std::vector<std::uint8_t> payload;
  AppendSnapshotHeader(header, &payload);
  SnapshotHeader parsed;
  ASSERT_TRUE(ReadSnapshotHeader(payload, &parsed));
  EXPECT_EQ(parsed.mode, header.mode);
  EXPECT_EQ(parsed.kind, header.kind);
  EXPECT_EQ(parsed.epsilon, header.epsilon);
  EXPECT_EQ(parsed.window_size, header.window_size);
  EXPECT_EQ(parsed.aux, header.aux);

  payload.pop_back();
  EXPECT_FALSE(ReadSnapshotHeader(payload, &parsed));
  payload.push_back(0);
  payload.push_back(0);
  EXPECT_FALSE(ReadSnapshotHeader(payload, &parsed));
}

TEST(Codec, WindowBufferRoundTripAndRejection) {
  const std::vector<float> staged = {1.5f, -2.25f, 0.0f, 1e30f};
  std::vector<std::uint8_t> payload;
  AppendWindowBuffer(staged, &payload);
  std::vector<float> parsed;
  ASSERT_TRUE(ReadWindowBuffer(payload, &parsed));
  EXPECT_EQ(parsed, staged);

  std::vector<std::uint8_t> truncated(payload.begin(), payload.end() - 2);
  EXPECT_FALSE(ReadWindowBuffer(truncated, &parsed));
  std::vector<std::uint8_t> trailing = payload;
  trailing.push_back(0);
  EXPECT_FALSE(ReadWindowBuffer(trailing, &parsed));
  // A count far larger than the payload (would overflow count * sizeof).
  std::vector<std::uint8_t> lying = payload;
  for (std::size_t i = 0; i < 8; ++i) lying[i] = 0xFF;
  EXPECT_FALSE(ReadWindowBuffer(lying, &parsed));
}

// ---------------------------------------------------------------------------
// Commit protocol

/// One tiny valid snapshot: header + quantile-state stub + window buffer.
void CommitStub(CheckpointWriter* writer, std::uint64_t watermark) {
  SnapshotHeader header;
  header.mode = kSnapshotModeQuantile;
  header.epsilon = 0.01;
  header.window_size = 64;
  std::vector<std::uint8_t> header_payload;
  AppendSnapshotHeader(header, &header_payload);
  writer->Begin();
  writer->Add(RecordType::kSnapshotHeader, header_payload);
  const std::vector<std::uint8_t> state = {0xAB, 0xCD};
  writer->Add(RecordType::kQuantileState, state);
  ASSERT_TRUE(writer->Commit(watermark).ok());
}

TEST(CheckpointWriter, CommitLoadAndPrune) {
  const std::string dir = FreshDir("commit");
  CheckpointWriter writer(dir);
  for (std::uint64_t i = 1; i <= 5; ++i) CommitStub(&writer, i * 100);
  EXPECT_EQ(writer.commits(), 5u);

  const auto entries = ReadManifest(dir);
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_EQ(entries.back().epoch, 5u);
  EXPECT_EQ(entries.back().watermark, 500u);

  auto snapshot = LoadLatestSnapshot(dir);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->epoch, 5u);
  EXPECT_EQ(snapshot->watermark, 500u);
  ASSERT_EQ(snapshot->records.size(), 2u);
  EXPECT_EQ(snapshot->records[0].type, RecordType::kSnapshotHeader);
  EXPECT_EQ(snapshot->records[1].type, RecordType::kQuantileState);

  // Only the newest two snapshots are retained.
  EXPECT_FALSE(std::filesystem::exists(dir + "/snap-3.ckpt"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/snap-4.ckpt"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/snap-5.ckpt"));
}

TEST(CheckpointWriter, EmptyDirHasNoUsableCheckpoint) {
  const std::string dir = FreshDir("empty");
  const auto snapshot = LoadLatestSnapshot(dir);
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(),
            core::Status::Code::kFailedPrecondition);
  // A directory that does not even exist behaves the same.
  EXPECT_EQ(LoadLatestSnapshot(dir + "/nope").status().code(),
            core::Status::Code::kFailedPrecondition);
}

TEST(CheckpointWriter, TornManifestTailFallsBackAndHeals) {
  const std::string dir = FreshDir("torn");
  {
    CheckpointWriter writer(dir);
    CommitStub(&writer, 100);
    CommitStub(&writer, 200);
  }
  // Simulate a crash mid-append: garbage after the last valid entry.
  const std::string manifest = dir + "/" + kManifestName;
  std::vector<std::uint8_t> bytes = ReadFile(manifest);
  const std::size_t intact = bytes.size();
  bytes.insert(bytes.end(), {0x53, 0x47, 0x44, 0x52, 0xFF, 0xEE});
  WriteFile(manifest, bytes);

  // Readers truncate at the torn record and still see epoch 2.
  EXPECT_EQ(ReadManifest(dir).size(), 2u);
  auto snapshot = LoadLatestSnapshot(dir);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->epoch, 2u);

  // A restarted writer heals the file (truncates the torn tail) before
  // appending, so its new commits stay visible to readers.
  CheckpointWriter writer(dir);
  CommitStub(&writer, 300);
  EXPECT_EQ(ReadFile(manifest).size(), intact + intact / 2);
  const auto entries = ReadManifest(dir);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries.back().epoch, 3u);
  snapshot = LoadLatestSnapshot(dir);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->epoch, 3u);
}

TEST(CheckpointWriter, CorruptedNewestSnapshotFallsBackOneEpoch) {
  const std::string dir = FreshDir("fallback");
  CheckpointWriter writer(dir);
  CommitStub(&writer, 100);
  CommitStub(&writer, 200);

  std::vector<std::uint8_t> bytes = ReadFile(dir + "/snap-2.ckpt");
  bytes[bytes.size() / 2] ^= 0x01;
  WriteFile(dir + "/snap-2.ckpt", bytes);

  auto snapshot = LoadLatestSnapshot(dir);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->epoch, 1u);
  EXPECT_EQ(snapshot->watermark, 100u);
}

TEST(CheckpointWriter, StrayTmpFilesAreCleanedUpOnRestart) {
  const std::string dir = FreshDir("tmp");
  {
    CheckpointWriter writer(dir);
    CommitStub(&writer, 100);
  }
  const std::vector<std::uint8_t> junk = {1, 2, 3};
  WriteFile(dir + "/snap-2.ckpt.tmp", junk);
  CheckpointWriter writer(dir);
  CommitStub(&writer, 200);
  EXPECT_FALSE(std::filesystem::exists(dir + "/snap-2.ckpt.tmp"));
  EXPECT_EQ(LoadLatestSnapshot(dir)->epoch, 2u);
}

TEST(CheckpointWriter, ParseSnapshotRejectsStructuralViolations) {
  std::vector<std::uint8_t> header_payload;
  AppendSnapshotHeader(SnapshotHeader{}, &header_payload);
  std::vector<std::uint8_t> footer;
  wire::Append<std::uint64_t>(&footer, 1);
  wire::Append<std::uint64_t>(&footer, 42);

  // No header first.
  std::vector<std::uint8_t> no_header;
  AppendRecord(RecordType::kQuantileState, {}, &no_header);
  EXPECT_FALSE(ParseSnapshot(no_header).ok());

  // Missing footer.
  std::vector<std::uint8_t> no_footer;
  AppendRecord(RecordType::kSnapshotHeader, header_payload, &no_footer);
  EXPECT_FALSE(ParseSnapshot(no_footer).ok());

  // Footer record count disagrees with the body.
  std::vector<std::uint8_t> miscounted;
  AppendRecord(RecordType::kSnapshotHeader, header_payload, &miscounted);
  AppendRecord(RecordType::kQuantileState, {}, &miscounted);
  AppendRecord(RecordType::kSnapshotFooter, footer, &miscounted);  // claims 1
  EXPECT_FALSE(ParseSnapshot(miscounted).ok());

  // Bytes after the footer.
  std::vector<std::uint8_t> trailing;
  AppendRecord(RecordType::kSnapshotHeader, header_payload, &trailing);
  AppendRecord(RecordType::kSnapshotFooter, footer, &trailing);
  AppendRecord(RecordType::kWindowBuffer, {}, &trailing);
  EXPECT_FALSE(ParseSnapshot(trailing).ok());

  // Manifest entries do not belong inside snapshots.
  std::vector<std::uint8_t> manifest_inside;
  AppendRecord(RecordType::kSnapshotHeader, header_payload, &manifest_inside);
  AppendRecord(RecordType::kManifestEntry, {}, &manifest_inside);
  AppendRecord(RecordType::kSnapshotFooter, footer, &manifest_inside);
  EXPECT_FALSE(ParseSnapshot(manifest_inside).ok());
}

TEST(CheckpointWriterDeathTest, CrashPointsAbortAtTheNamedStep) {
  // Fork-style death tests: the child inherits the parent's state and runs
  // only the statement, so the directory the kill mutates is the same one
  // the recovery assertions below inspect.
  ::testing::FLAGS_gtest_death_test_style = "fast";
  for (const char* point :
       {"snapshot-partial", "pre-rename", "pre-manifest", "manifest-partial"}) {
    const std::string dir = FreshDir(std::string("crash_") + point);
    ASSERT_EQ(::setenv("STREAMGPU_DURABLE_CRASH_AT",
                       (std::string(point) + ":1").c_str(), 1),
              0);
    EXPECT_EXIT(
        {
          CheckpointWriter writer(dir);
          CommitStub(&writer, 100);  // ordinal 0: commits normally
          CommitStub(&writer, 200);  // ordinal 1: aborts at `point`
        },
        ::testing::ExitedWithCode(42), "")
        << point;
    ::unsetenv("STREAMGPU_DURABLE_CRASH_AT");
    // Whatever the kill left behind, epoch 1 is always recoverable — and
    // pre-manifest/manifest-partial kills may still surface epoch 2.
    auto snapshot = LoadLatestSnapshot(dir);
    ASSERT_TRUE(snapshot.ok()) << point;
    EXPECT_GE(snapshot->epoch, 1u) << point;
    // A restarted writer recovers and commits past the crash.
    CheckpointWriter writer(dir);
    CommitStub(&writer, 300);
    EXPECT_TRUE(LoadLatestSnapshot(dir).ok()) << point;
  }
}

// ---------------------------------------------------------------------------
// Estimator checkpoint/restore bit-identity

core::Options EstimatorOptions(const std::string& dir,
                               sketch::QuantileSketchKind kind, int workers) {
  core::Options opt;
  opt.epsilon = 0.01;
  opt.quantile_sketch = kind;
  opt.num_sort_workers = workers;
  opt.checkpoint_dir = dir;
  return opt;
}

void ExpectQuantileBitIdentity(sketch::QuantileSketchKind kind, int workers) {
  SCOPED_TRACE(testing::Message() << "kind=" << static_cast<int>(kind)
                                  << " workers=" << workers);
  const std::vector<float> stream = MakeStream(20000, 7);
  const std::string dir =
      FreshDir("qe_" + std::to_string(static_cast<int>(kind)) + "_" +
               std::to_string(workers));

  core::Options ref_opt = EstimatorOptions("", kind, workers);
  auto ref = core::QuantileEstimator::Create(ref_opt);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE((*ref)->ObserveBatch(stream).ok());
  ASSERT_TRUE((*ref)->Flush().ok());

  // Observe a prefix that is deliberately not a window multiple, checkpoint,
  // throw the estimator away, restore, and replay the suffix.
  const std::size_t cut = 12345;
  {
    auto first = core::QuantileEstimator::Create(EstimatorOptions(dir, kind, workers));
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(
        (*first)->ObserveBatch(std::span(stream).first(cut)).ok());
    ASSERT_TRUE((*first)->Checkpoint().ok());
  }
  auto restored = core::QuantileEstimator::Restore(EstimatorOptions(dir, kind, workers));
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  const std::uint64_t watermark = (*restored)->observed_length();
  EXPECT_EQ(watermark, cut);
  ASSERT_TRUE(
      (*restored)->ObserveBatch(std::span(stream).subspan(watermark)).ok());
  ASSERT_TRUE((*restored)->Flush().ok());

  for (double phi : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ((*restored)->Quantile(phi), (*ref)->Quantile(phi)) << "phi " << phi;
  }
  // The mergeable shard export is byte-identical too (restore-then-merge).
  const auto ref_bytes = (*ref)->SerializedSummary();
  const auto restored_bytes = (*restored)->SerializedSummary();
  ASSERT_TRUE(ref_bytes.ok());
  ASSERT_TRUE(restored_bytes.ok());
  EXPECT_EQ(*restored_bytes, *ref_bytes);
}

TEST(QuantileRestore, BitIdenticalAcrossKindsAndWorkers) {
  for (auto kind : {sketch::QuantileSketchKind::kGk,
                    sketch::QuantileSketchKind::kGkAdaptive,
                    sketch::QuantileSketchKind::kKll}) {
    ExpectQuantileBitIdentity(kind, 1);
  }
  ExpectQuantileBitIdentity(sketch::QuantileSketchKind::kGk, 3);
  ExpectQuantileBitIdentity(sketch::QuantileSketchKind::kKll, 3);
}

TEST(QuantileRestore, AutoCheckpointCadenceAndMidStreamKill) {
  const std::vector<float> stream = MakeStream(30000, 11);
  const std::string dir = FreshDir("qe_auto");

  core::Options opt = EstimatorOptions(dir, sketch::QuantileSketchKind::kGk, 1);
  opt.checkpoint_every_windows = 16;
  auto first = core::QuantileEstimator::Create(opt);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*first)->ObserveBatch(stream).ok());
  EXPECT_GT((*first)->checkpoints(), 1u);
  // Simulate a kill before Flush: simply drop the estimator. The newest
  // auto-checkpoint restores and replays to the same final answer.
  const std::uint64_t lost = (*first)->observed_length();
  first->reset();

  auto restored = core::QuantileEstimator::Restore(opt);
  ASSERT_TRUE(restored.ok());
  EXPECT_LE((*restored)->observed_length(), lost);
  ASSERT_TRUE(
      (*restored)
          ->ObserveBatch(std::span(stream).subspan((*restored)->observed_length()))
          .ok());
  ASSERT_TRUE((*restored)->Flush().ok());

  auto ref = core::QuantileEstimator::Create(
      EstimatorOptions("", sketch::QuantileSketchKind::kGk, 1));
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE((*ref)->ObserveBatch(stream).ok());
  ASSERT_TRUE((*ref)->Flush().ok());
  EXPECT_EQ((*restored)->Quantile(0.5), (*ref)->Quantile(0.5));
}

TEST(QuantileRestore, PersistsQuarantineAccounting) {
  // Quarantine windows (bitflip plan, CPU fallback off), checkpoint after
  // the full stream, restore with nothing to replay: the honestly-widened
  // bounds must survive the round trip.
  const std::vector<float> stream = MakeStream(20000, 13);
  const std::string dir = FreshDir("qe_quarantine");
  core::Options opt = EstimatorOptions(dir, sketch::QuantileSketchKind::kGk, 1);
  auto plan = core::FaultPlan::Parse("pass:bitflip:every=3", 1);
  ASSERT_TRUE(plan.ok());
  opt.fault.plan = *plan;
  opt.fault.max_retries = 0;
  opt.fault.cpu_fallback = false;

  auto first = core::QuantileEstimator::Create(opt);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*first)->ObserveBatch(stream).ok());
  ASSERT_TRUE((*first)->Checkpoint().ok());
  ASSERT_TRUE((*first)->Flush().ok());
  const core::QuantileReport before = (*first)->Quantile(0.5);
  ASSERT_GT(before.windows_quarantined, 0u);
  ASSERT_GT(before.elements_dropped, 0u);

  auto restored = core::QuantileEstimator::Restore(opt);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  ASSERT_TRUE((*restored)->Flush().ok());
  const core::QuantileReport after = (*restored)->Quantile(0.5);
  EXPECT_EQ(after.windows_quarantined, before.windows_quarantined);
  EXPECT_EQ(after.elements_dropped, before.elements_dropped);
  EXPECT_EQ(after, before);
}

TEST(QuantileRestore, RejectsConfigurationMismatch) {
  const std::vector<float> stream = MakeStream(5000, 17);
  const std::string dir = FreshDir("qe_mismatch");
  core::Options opt = EstimatorOptions(dir, sketch::QuantileSketchKind::kGk, 1);
  auto first = core::QuantileEstimator::Create(opt);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*first)->ObserveBatch(stream).ok());
  ASSERT_TRUE((*first)->Checkpoint().ok());

  core::Options wrong_eps = opt;
  wrong_eps.epsilon = 0.02;
  EXPECT_EQ(core::QuantileEstimator::Restore(wrong_eps).status().code(),
            core::Status::Code::kInvalidArgument);
  core::Options wrong_kind = opt;
  wrong_kind.quantile_sketch = sketch::QuantileSketchKind::kKll;
  EXPECT_EQ(core::QuantileEstimator::Restore(wrong_kind).status().code(),
            core::Status::Code::kInvalidArgument);
  // A frequency restore must refuse a quantile snapshot outright.
  EXPECT_EQ(core::FrequencyEstimator::Restore(opt).status().code(),
            core::Status::Code::kInvalidArgument);
  // And restoring without a directory is a caller error.
  core::Options no_dir = opt;
  no_dir.checkpoint_dir.clear();
  EXPECT_EQ(core::QuantileEstimator::Restore(no_dir).status().code(),
            core::Status::Code::kInvalidArgument);
}

TEST(FrequencyRestore, BitIdenticalHeavyHitters) {
  const std::vector<float> stream = MakeStream(20000, 19);
  const std::string dir = FreshDir("fe");
  core::Options opt;
  opt.epsilon = 0.01;
  opt.checkpoint_dir = dir;

  core::Options ref_opt = opt;
  ref_opt.checkpoint_dir.clear();
  auto ref = core::FrequencyEstimator::Create(ref_opt);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE((*ref)->ObserveBatch(stream).ok());
  ASSERT_TRUE((*ref)->Flush().ok());

  const std::size_t cut = 9876;
  {
    auto first = core::FrequencyEstimator::Create(opt);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE((*first)->ObserveBatch(std::span(stream).first(cut)).ok());
    ASSERT_TRUE((*first)->Checkpoint().ok());
  }
  auto restored = core::FrequencyEstimator::Restore(opt);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ((*restored)->observed_length(), cut);
  ASSERT_TRUE((*restored)->ObserveBatch(std::span(stream).subspan(cut)).ok());
  ASSERT_TRUE((*restored)->Flush().ok());

  EXPECT_EQ((*restored)->HeavyHitters(0.01), (*ref)->HeavyHitters(0.01));
  EXPECT_EQ((*restored)->HeavyHitters(0.05), (*ref)->HeavyHitters(0.05));
}

// ---------------------------------------------------------------------------
// Structured corruption corpus over a real estimator snapshot: restore must
// fail with Status (or, for byte-equivalent mutations, succeed) — never
// crash. The manifest is re-pointed at each mutant so the mutation reaches
// the layers behind the manifest's size/CRC screen.

class CorruptionCorpus : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = FreshDir("corpus");
    opt_ = EstimatorOptions(dir_, sketch::QuantileSketchKind::kGk, 1);
    const std::vector<float> stream = MakeStream(4000, 23);
    auto estimator = core::QuantileEstimator::Create(opt_);
    ASSERT_TRUE(estimator.ok());
    // Off-window cut so the snapshot carries a staged partial window.
    ASSERT_TRUE((*estimator)->ObserveBatch(std::span(stream).first(3210)).ok());
    ASSERT_TRUE((*estimator)->Checkpoint().ok());
    snap_path_ = dir_ + "/snap-1.ckpt";
    pristine_ = ReadFile(snap_path_);
    ASSERT_FALSE(pristine_.empty());
    watermark_ = 3210;
  }

  /// Installs `mutant` as the (manifest-blessed) newest snapshot and runs a
  /// restore. The assertion that matters is implicit: no crash, no ASan
  /// report — corruption surfaces as Status.
  core::Status RestoreMutant(std::span<const std::uint8_t> mutant) {
    WriteFile(snap_path_, mutant);
    PointManifestAt(dir_, 1, mutant, watermark_);
    auto restored = core::QuantileEstimator::Restore(opt_);
    return restored.ok() ? core::Status::Ok() : restored.status();
  }

  std::string dir_;
  std::string snap_path_;
  core::Options opt_;
  std::vector<std::uint8_t> pristine_;
  std::uint64_t watermark_ = 0;
};

TEST_F(CorruptionCorpus, PristineSnapshotRestores) {
  EXPECT_TRUE(RestoreMutant(pristine_).ok());
}

TEST_F(CorruptionCorpus, BitFlipsNeverCrash) {
  // Every frame byte is covered by header validation or the payload CRC, so
  // a single flipped bit is always rejected. Stride through the file plus
  // hit the first frame exhaustively.
  for (std::size_t i = 0; i < pristine_.size();
       i += (i < kRecordHeaderSize ? 1 : 7)) {
    std::vector<std::uint8_t> mutant = pristine_;
    mutant[i] ^= 1u << (i % 8);
    EXPECT_FALSE(RestoreMutant(mutant).ok()) << "flip at byte " << i;
  }
}

TEST_F(CorruptionCorpus, TruncationsAtEveryRecordBoundaryNeverCrash) {
  // Record boundaries: walk the pristine file.
  std::vector<std::size_t> boundaries = {0};
  std::span<const std::uint8_t> cursor(pristine_);
  while (!cursor.empty()) {
    auto record = ReadRecord(&cursor);
    ASSERT_TRUE(record.ok());
    boundaries.push_back(pristine_.size() - cursor.size());
  }
  ASSERT_GE(boundaries.size(), 3u);
  for (std::size_t boundary : boundaries) {
    if (boundary == pristine_.size()) continue;  // the intact file
    const std::span<const std::uint8_t> mutant(pristine_.data(), boundary);
    EXPECT_FALSE(RestoreMutant(mutant).ok()) << "truncated at " << boundary;
    // Mid-record truncations too (a few bytes past the boundary).
    if (boundary + 3 < pristine_.size()) {
      EXPECT_FALSE(
          RestoreMutant(std::span(pristine_.data(), boundary + 3)).ok());
    }
  }
}

TEST_F(CorruptionCorpus, DuplicatedRecordsNeverCrash) {
  // Re-frame the snapshot with each record duplicated in turn; the footer is
  // rebuilt so the mutation reaches semantic validation, not just framing.
  auto parsed = ParseSnapshot(pristine_);
  ASSERT_TRUE(parsed.ok());
  const std::size_t n = parsed->records.size();
  for (std::size_t dup = 0; dup < n; ++dup) {
    std::vector<std::uint8_t> mutant;
    std::uint64_t body = 0;
    for (std::size_t i = 0; i < n; ++i) {
      AppendRecord(parsed->records[i].type, parsed->records[i].payload, &mutant);
      ++body;
      if (i == dup) {
        AppendRecord(parsed->records[i].type, parsed->records[i].payload,
                     &mutant);
        ++body;
      }
    }
    std::vector<std::uint8_t> footer;
    wire::Append<std::uint64_t>(&footer, body);
    wire::Append<std::uint64_t>(&footer, watermark_);
    AppendRecord(RecordType::kSnapshotFooter, footer, &mutant);
    EXPECT_FALSE(RestoreMutant(mutant).ok()) << "duplicated record " << dup;
  }
}

TEST_F(CorruptionCorpus, WatermarkMismatchIsRejected) {
  // A snapshot whose footer watermark disagrees with the state it carries
  // must not restore (the invariant InstallSnapshot checks).
  auto parsed = ParseSnapshot(pristine_);
  ASSERT_TRUE(parsed.ok());
  std::vector<std::uint8_t> mutant;
  for (const OwnedRecord& record : parsed->records) {
    AppendRecord(record.type, record.payload, &mutant);
  }
  std::vector<std::uint8_t> footer;
  wire::Append<std::uint64_t>(&footer, parsed->records.size());
  wire::Append<std::uint64_t>(&footer, watermark_ + 1);
  AppendRecord(RecordType::kSnapshotFooter, footer, &mutant);
  WriteFile(snap_path_, mutant);
  PointManifestAt(dir_, 1, mutant, watermark_ + 1);
  const auto restored = core::QuantileEstimator::Restore(opt_);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), core::Status::Code::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Service checkpoint/restore

service::ServiceConfig SmallServiceConfig() {
  service::ServiceConfig config;
  config.num_workers = 1;
  config.num_shards = 4;
  config.shard_batch_elements = 1024;
  return config;
}

TEST(ServiceRestore, BitIdenticalReportsAndExports) {
  const std::size_t kStreams = 12;
  const std::size_t kPerStream = 1500;
  const std::vector<float> stream = MakeStream(kStreams * kPerStream, 29);

  auto ingest = [&](service::StreamService* service, std::size_t from,
                    std::size_t to) {
    for (std::size_t i = 0; i < kStreams; ++i) {
      const service::StreamKey key{i % 3, i};
      const auto slice = std::span(stream).subspan(i * kPerStream, kPerStream);
      const auto admitted =
          service->Append(key, slice.subspan(from, to - from));
      ASSERT_TRUE(admitted.ok());
    }
  };

  service::StreamConfig stream_config;
  stream_config.epsilon = 0.02;
  stream_config.track_frequencies = true;

  auto ref = service::StreamService::Create(SmallServiceConfig());
  ASSERT_TRUE(ref.ok());
  for (std::size_t i = 0; i < kStreams; ++i) {
    ASSERT_TRUE((*ref)->Register({i % 3, i}, stream_config).ok());
  }
  ingest(ref->get(), 0, kPerStream);
  ASSERT_TRUE((*ref)->FlushAll().ok());

  const std::string dir = FreshDir("service");
  const std::size_t cut = 777;  // deliberately not a window multiple
  {
    auto first = service::StreamService::Create(SmallServiceConfig());
    ASSERT_TRUE(first.ok());
    for (std::size_t i = 0; i < kStreams; ++i) {
      ASSERT_TRUE((*first)->Register({i % 3, i}, stream_config).ok());
    }
    ingest(first->get(), 0, cut);
    CheckpointWriter writer(dir);
    ASSERT_TRUE((*first)->Checkpoint(&writer).ok());
  }

  auto restored =
      service::StreamService::RestoreFrom(SmallServiceConfig(), dir);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  ASSERT_EQ((*restored)->num_streams(), kStreams);
  for (std::size_t i = 0; i < kStreams; ++i) {
    const auto offered = (*restored)->OfferedLength({i % 3, i});
    ASSERT_TRUE(offered.ok());
    EXPECT_EQ(*offered, cut) << "stream " << i;
  }
  ingest(restored->get(), cut, kPerStream);
  ASSERT_TRUE((*restored)->FlushAll().ok());

  for (std::size_t i = 0; i < kStreams; ++i) {
    const service::StreamKey key{i % 3, i};
    for (double phi : {0.25, 0.5, 0.95}) {
      const auto a = (*restored)->Quantile(key, phi);
      const auto b = (*ref)->Quantile(key, phi);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(*a, *b) << "stream " << i << " phi " << phi;
    }
    const auto hh_a = (*restored)->HeavyHitters(key, 0.05);
    const auto hh_b = (*ref)->HeavyHitters(key, 0.05);
    ASSERT_TRUE(hh_a.ok());
    ASSERT_TRUE(hh_b.ok());
    EXPECT_EQ(*hh_a, *hh_b) << "stream " << i;
    // The mergeable shard export is byte-identical (restore-then-merge).
    const auto export_a = (*restored)->ExportQuantileSummary(key);
    const auto export_b = (*ref)->ExportQuantileSummary(key);
    ASSERT_TRUE(export_a.ok());
    ASSERT_TRUE(export_b.ok());
    EXPECT_EQ(*export_a, *export_b) << "stream " << i;
  }

  const service::ServiceStats stats_a = (*restored)->stats();
  const service::ServiceStats stats_b = (*ref)->stats();
  EXPECT_EQ(stats_a.streams, stats_b.streams);
  EXPECT_EQ(stats_a.elements_observed, stats_b.elements_observed);
  EXPECT_EQ(stats_a.windows_merged, stats_b.windows_merged);
}

TEST(ServiceRestore, PersistsShedAccounting) {
  service::ServiceConfig config = SmallServiceConfig();
  config.admission = stream::AdmissionPolicy::kShed;
  config.shard_ingress_capacity = 256;

  auto service = service::StreamService::Create(config);
  ASSERT_TRUE(service.ok());
  service::StreamConfig stream_config;
  stream_config.epsilon = 0.02;
  const service::StreamKey key{0, 0};
  ASSERT_TRUE((*service)->Register(key, stream_config).ok());

  // Pause dispatch so the backlog builds past the shed capacity.
  const std::vector<float> stream = MakeStream(2000, 31);
  (*service)->PauseDispatch();
  const auto admitted = (*service)->Append(key, stream);
  ASSERT_TRUE(admitted.ok());
  ASSERT_LT(*admitted, stream.size());
  ASSERT_TRUE((*service)->ResumeDispatch().ok());
  ASSERT_TRUE((*service)->WaitIdle().ok());
  const std::uint64_t shed_before = (*service)->stats().elements_shed;
  ASSERT_GT(shed_before, 0u);

  const std::string dir = FreshDir("service_shed");
  CheckpointWriter writer(dir);
  ASSERT_TRUE((*service)->Checkpoint(&writer).ok());
  ASSERT_TRUE((*service)->FlushAll().ok());
  const auto report_before = (*service)->Quantile(key, 0.5);
  ASSERT_TRUE(report_before.ok());
  ASSERT_GT(report_before->elements_shed, 0u);

  auto restored = service::StreamService::RestoreFrom(config, dir);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ((*restored)->stats().elements_shed, shed_before);
  EXPECT_EQ((*restored)->admission().total_shed(), shed_before);
  ASSERT_TRUE((*restored)->FlushAll().ok());
  const auto report_after = (*restored)->Quantile(key, 0.5);
  ASSERT_TRUE(report_after.ok());
  // The honestly-widened bound survives the round trip exactly.
  EXPECT_EQ(*report_after, *report_before);
}

TEST(ServiceRestore, RejectsTopologyMismatch) {
  const std::string dir = FreshDir("service_mismatch");
  {
    auto service = service::StreamService::Create(SmallServiceConfig());
    ASSERT_TRUE(service.ok());
    service::StreamConfig stream_config;
    stream_config.epsilon = 0.02;
    ASSERT_TRUE((*service)->Register({0, 0}, stream_config).ok());
    const std::vector<float> stream = MakeStream(500, 37);
    ASSERT_TRUE((*service)->Append({0, 0}, stream).ok());
    CheckpointWriter writer(dir);
    ASSERT_TRUE((*service)->Checkpoint(&writer).ok());
  }
  // A different shard topology cannot adopt the snapshot's admission state.
  service::ServiceConfig wrong = SmallServiceConfig();
  wrong.num_shards = 8;
  EXPECT_EQ(service::StreamService::RestoreFrom(wrong, dir).status().code(),
            core::Status::Code::kInvalidArgument);
  // An estimator restore must refuse a service snapshot.
  core::Options opt;
  opt.epsilon = 0.02;
  opt.checkpoint_dir = dir;
  EXPECT_EQ(core::QuantileEstimator::Restore(opt).status().code(),
            core::Status::Code::kInvalidArgument);
  // An empty directory is FailedPrecondition (start fresh), not corruption.
  EXPECT_EQ(service::StreamService::RestoreFrom(SmallServiceConfig(),
                                                FreshDir("service_empty"))
                .status()
                .code(),
            core::Status::Code::kFailedPrecondition);
}

}  // namespace
}  // namespace streamgpu::durable
