// Engine equivalence suite: the vectorized fast path must be indistinguishable
// from the reference per-pixel path, across formats and across pipeline
// parallelism.
//
// The invariant (docs/ARCHITECTURE.md, "Pass-execution engine") is strict:
// byte-identical sorted output and identical GpuStats for every cell of
// {generic, fast} x {kFloat16, kFloat32} x {1, 8 workers}. Host-side engine
// choices — row kernels vs. bilinear loops, framebuffer aliasing, worker
// fan-out — are performance details; any observable divergence is a bug.
//
// The golden test additionally pins the absolute counter values for a fixed
// input, so a change that shifts both paths in lockstep (and would slip past
// the pairwise comparison) still trips the suite.

#include <cstring>
#include <numeric>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/status.h"
#include "gpu/device.h"
#include "gpu/half.h"
#include "gpu/rasterizer.h"
#include "gpu/stats.h"
#include "hwmodel/hardware_profiles.h"
#include "sort/pbsn_gpu.h"
#include "stream/generator.h"
#include "stream/pipeline.h"
#include "stream/window_buffer.h"

namespace streamgpu {
namespace {

constexpr std::uint64_t kWindow = 1 << 10;
constexpr int kWindowsPerBatch = 4;

struct RunResult {
  std::vector<float> sorted;   // drained batches, concatenated in order
  gpu::GpuStats stats;         // summed over all worker devices
  double simulated_seconds = 0;
};

// RAII guard: the raster path is process-global, restore it on test exit.
class ScopedRasterPath {
 public:
  explicit ScopedRasterPath(gpu::RasterPath path) : saved_(gpu::Rasterizer::path()) {
    gpu::Rasterizer::SetPath(path);
  }
  ~ScopedRasterPath() { gpu::Rasterizer::SetPath(saved_); }

 private:
  gpu::RasterPath saved_;
};

// Streams `data` through a WindowBatcher -> SortPipeline with `workers`
// PBSN sorters (one simulated device each) under the given raster path.
RunResult RunPipeline(gpu::RasterPath path, gpu::Format format, int workers,
                      const std::vector<float>& data) {
  ScopedRasterPath scoped(path);

  std::vector<gpu::GpuDevice> devices(workers);
  std::vector<sort::PbsnGpuSorter> sorters;
  sorters.reserve(workers);
  sort::PbsnOptions opt;
  opt.format = format;
  for (int w = 0; w < workers; ++w) {
    sorters.emplace_back(&devices[w], hwmodel::kGeForce6800Ultra,
                         hwmodel::kPentium4_3400, opt);
  }
  std::vector<sort::Sorter*> sorter_ptrs;
  for (auto& s : sorters) sorter_ptrs.push_back(&s);

  RunResult result;
  {
    stream::PipelineConfig config;
    config.window_size = kWindow;
    stream::SortPipeline pipeline(
        config, sorter_ptrs,
        [&result](std::vector<float>&& batch, const sort::SortRunInfo& run,
                  std::uint64_t) {
          result.sorted.insert(result.sorted.end(), batch.begin(), batch.end());
          result.simulated_seconds += run.simulated_seconds;
          return core::Status::Ok();
        });
    stream::WindowBatcher batcher(kWindow, kWindowsPerBatch);
    for (float v : data) {
      if (batcher.Push(v)) {
        pipeline.Submit(batcher.TakeBuffer(pipeline.AcquireBuffer()));
      }
    }
    if (!batcher.empty()) {
      pipeline.Submit(batcher.TakeBuffer(pipeline.AcquireBuffer()));
    }
    pipeline.WaitIdle();
  }
  for (const auto& d : devices) result.stats += d.stats();
  return result;
}

// 6 full batches plus a trailing partial batch (odd window count, partial
// final window) so run padding is exercised too.
std::vector<float> TestData() {
  stream::StreamGenerator gen(
      {.distribution = stream::Distribution::kUniformReal, .seed = 1234});
  auto data = gen.Take(kWindow * kWindowsPerBatch * 6 + kWindow * 2 + 100);
  // Sprinkle duplicates and exact-tie values across window boundaries.
  for (std::size_t i = 0; i < data.size(); i += 97) data[i] = 0.5f;
  for (std::size_t i = 50; i < data.size(); i += 131) data[i] = data[i / 2];
  return data;
}

std::string FormatName(gpu::Format f) {
  return f == gpu::Format::kFloat16 ? "kFloat16" : "kFloat32";
}

TEST(EngineEquivalenceTest, FastMatchesGenericAcrossFormatsAndWorkers) {
  const auto data = TestData();

  for (gpu::Format format : {gpu::Format::kFloat16, gpu::Format::kFloat32}) {
    SCOPED_TRACE(FormatName(format));
    // Reference: the per-pixel bilinear path, serial.
    const RunResult golden =
        RunPipeline(gpu::RasterPath::kGeneric, format, /*workers=*/1, data);
    ASSERT_EQ(golden.sorted.size(), data.size());

    for (gpu::RasterPath path : {gpu::RasterPath::kGeneric, gpu::RasterPath::kFast}) {
      for (int workers : {1, 8}) {
        SCOPED_TRACE(testing::Message()
                     << (path == gpu::RasterPath::kFast ? "fast" : "generic")
                     << " workers=" << workers);
        const RunResult got = RunPipeline(path, format, workers, data);

        ASSERT_EQ(got.sorted.size(), golden.sorted.size());
        // Byte-identical output: memcmp, not float compare — -0.0 vs 0.0 or a
        // NaN payload change must fail.
        EXPECT_EQ(std::memcmp(got.sorted.data(), golden.sorted.data(),
                              golden.sorted.size() * sizeof(float)),
                  0);
        EXPECT_EQ(got.stats, golden.stats);
        EXPECT_DOUBLE_EQ(got.simulated_seconds, golden.simulated_seconds);
      }
    }
  }
}

// The sorted output must also be *correct*: each window ascending, and for
// kFloat16 equal to the sort of the binary16-quantized input (quantization
// happens at upload; the comparator network then only moves values around).
TEST(EngineEquivalenceTest, FastPathSortsWindowsCorrectly) {
  const auto data = TestData();

  for (gpu::Format format : {gpu::Format::kFloat16, gpu::Format::kFloat32}) {
    SCOPED_TRACE(FormatName(format));
    const RunResult got =
        RunPipeline(gpu::RasterPath::kFast, format, /*workers=*/8, data);
    ASSERT_EQ(got.sorted.size(), data.size());

    for (std::size_t off = 0; off < data.size(); off += kWindow) {
      const std::size_t len = std::min<std::size_t>(kWindow, data.size() - off);
      std::vector<float> expect(data.begin() + off, data.begin() + off + len);
      if (format == gpu::Format::kFloat16) {
        for (float& v : expect) v = gpu::QuantizeToHalf(v);
      }
      std::sort(expect.begin(), expect.end());
      ASSERT_EQ(std::memcmp(got.sorted.data() + off, expect.data(),
                            len * sizeof(float)),
                0)
          << "window at offset " << off;
    }
  }
}

// Golden counters for one fixed 4-window batch. These values are part of the
// simulated-2005 contract: the cost model consumes them, so any engine change
// that moves them changes reported simulated milliseconds. Update only with a
// corresponding cost-model justification.
TEST(EngineEquivalenceTest, GoldenStatsForFixedBatch) {
  ScopedRasterPath scoped(gpu::RasterPath::kFast);

  stream::StreamGenerator gen(
      {.distribution = stream::Distribution::kUniformReal, .seed = 99});
  auto data = gen.Take(kWindow * kWindowsPerBatch);

  gpu::GpuDevice device;
  sort::PbsnOptions opt;
  opt.format = gpu::Format::kFloat16;
  sort::PbsnGpuSorter sorter(&device, hwmodel::kGeForce6800Ultra,
                             hwmodel::kPentium4_3400, opt);
  std::vector<std::span<float>> runs;
  for (int w = 0; w < kWindowsPerBatch; ++w) {
    runs.emplace_back(data.data() + w * kWindow, kWindow);
  }
  sorter.SortRuns(runs);

  const gpu::GpuStats& s = device.stats();
  EXPECT_EQ(s.framebuffer_binds, 1u);
  // PBSN on a 32x32 texture: log2(1024)=10 -> 10 stages x 10 steps.
  EXPECT_EQ(s.fb_to_texture_copies, 100u);
  EXPECT_EQ(s.fragments_shaded, s.blend_fragments + 1024u * kWindowsPerBatch / 4u);
  EXPECT_EQ(s.texture_fetches, s.fragments_shaded);
  EXPECT_EQ(s.bytes_uploaded, kWindow * kWindowsPerBatch * sizeof(float) / 2);
  EXPECT_EQ(s.bytes_readback, kWindow * kWindowsPerBatch * sizeof(float) / 2);
  EXPECT_GT(s.bytes_vram, 0u);

  // Absolute counter pins (regenerate with STREAMGPU_RASTER_PATH=generic to
  // confirm both paths still agree before updating).
  EXPECT_EQ(s.draw_calls, 1241u);
  EXPECT_EQ(s.blend_fragments, 102400u);
  const gpu::GpuStats fast = s;

  // And the generic path lands on the same counters.
  gpu::Rasterizer::SetPath(gpu::RasterPath::kGeneric);
  gpu::GpuDevice device2;
  sort::PbsnGpuSorter sorter2(&device2, hwmodel::kGeForce6800Ultra,
                              hwmodel::kPentium4_3400, opt);
  auto data2 = stream::StreamGenerator(
                   {.distribution = stream::Distribution::kUniformReal, .seed = 99})
                   .Take(kWindow * kWindowsPerBatch);
  std::vector<std::span<float>> runs2;
  for (int w = 0; w < kWindowsPerBatch; ++w) {
    runs2.emplace_back(data2.data() + w * kWindow, kWindow);
  }
  sorter2.SortRuns(runs2);
  EXPECT_EQ(device2.stats(), fast);
}

}  // namespace
}  // namespace streamgpu
