// Fault-injection and recovery suite (docs/ROBUSTNESS.md).
//
// Covers the whole chain: plan parsing and validation, injector determinism,
// the ResilientSorter guard (every corruption kind must be caught, across
// seeds — the property the recovery path rests on), healing equivalence
// (reports under transient faults are bit-identical to fault-free runs, both
// serial and pipelined), honest accounting when recovery is impossible
// (quarantine widens the reported bounds), and the pipeline failure paths
// (dead drain thread propagates a Status instead of hanging; the drain
// deadline turns indefinite backpressure into kDeadlineExceeded).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/fault.h"
#include "core/frequency_estimator.h"
#include "core/options.h"
#include "core/quantile_estimator.h"
#include "core/status.h"
#include "gpu/fault_hook.h"
#include "hwmodel/hardware_profiles.h"
#include "sort/cpu_sort.h"
#include "sort/resilient.h"
#include "stream/generator.h"
#include "stream/pipeline.h"

namespace streamgpu::core {
namespace {

std::vector<float> ZipfStream(std::size_t n, unsigned seed) {
  stream::StreamGenerator gen({.distribution = stream::Distribution::kZipf,
                               .seed = seed,
                               .domain_size = 300});
  return gen.Take(n);
}

// --- Plan parsing ---------------------------------------------------------

TEST(FaultPlanTest, ParsesAndRoundTrips) {
  const std::string spec =
      "pass:lost:every=5,max=2;readback:bitflip:p=0.01,bit=20;"
      "queue:stall:every=7,stall_us=250;upload:nan:after=3";
  auto plan = FaultPlan::Parse(spec, 42);
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  ASSERT_EQ(plan->rules.size(), 4u);
  EXPECT_EQ(plan->seed, 42u);
  EXPECT_EQ(plan->rules[0].site, FaultSite::kGpuPass);
  EXPECT_EQ(plan->rules[0].kind, FaultKind::kDeviceLost);
  EXPECT_EQ(plan->rules[0].every_n, 5u);
  EXPECT_EQ(plan->rules[0].max_fires, 2u);
  EXPECT_EQ(plan->rules[1].site, FaultSite::kGpuReadback);
  EXPECT_DOUBLE_EQ(plan->rules[1].probability, 0.01);
  EXPECT_EQ(plan->rules[1].bit, 20);
  EXPECT_EQ(plan->rules[2].site, FaultSite::kQueue);
  EXPECT_EQ(plan->rules[2].stall_us, 250u);
  // A rule with no trigger defaults to every op.
  EXPECT_EQ(plan->rules[3].every_n, 1u);
  EXPECT_EQ(plan->rules[3].start_after, 3u);

  // The canonical form re-parses to the same plan.
  auto again = FaultPlan::Parse(plan->ToString(), 42);
  ASSERT_TRUE(again.ok()) << again.status().message();
  ASSERT_EQ(again->rules.size(), plan->rules.size());
  EXPECT_EQ(again->ToString(), plan->ToString());
}

TEST(FaultPlanTest, EmptySpecDisables) {
  auto plan = FaultPlan::Parse("", 1);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
  EXPECT_EQ(plan->ToString(), "");
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "pass",                          // no kind
      "warp:bitflip",                  // unknown site
      "pass:meltdown",                 // unknown kind
      "pass:bitflip:every=0",          // zero period
      "pass:bitflip:p=1.5",            // probability out of range
      "pass:bitflip:every=2,p=0.5",    // two triggers
      "pass:bitflip:bit=32",           // bit out of range for binary32
      "queue:bitflip",                 // queue site only stalls
      "pass:bitflip:every=x",          // non-numeric value
      "pass:bitflip:frobnicate=1",     // unknown key
  };
  for (const char* spec : bad) {
    auto plan = FaultPlan::Parse(spec, 1);
    EXPECT_FALSE(plan.ok()) << "accepted: " << spec;
    EXPECT_EQ(plan.status().code(), Status::Code::kInvalidArgument) << spec;
  }
}

// --- Options validation (satellite: in-flight cap vs worker count) --------

TEST(FaultOptionsTest, RejectsInFlightCapBelowWorkerCount) {
  Options opt;
  opt.backend = Backend::kCpuStdSort;
  opt.num_sort_workers = 4;
  opt.max_windows_in_flight = 2;  // starves two workers; can deadlock
  const Status status = opt.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);

  opt.max_windows_in_flight = 4;
  EXPECT_TRUE(opt.Validate().ok());
  opt.max_windows_in_flight = 0;  // auto is always fine
  EXPECT_TRUE(opt.Validate().ok());
  opt.num_sort_workers = 1;  // serial mode ignores the cap
  opt.max_windows_in_flight = 1;
  EXPECT_TRUE(opt.Validate().ok());
}

TEST(FaultOptionsTest, RejectsInconsistentRecoveryKnobs) {
  Options opt;
  opt.fault.plan = *FaultPlan::Parse("pass:bitflip:every=2", 1);
  EXPECT_TRUE(opt.Validate().ok());
  opt.fault.max_retries = -1;
  EXPECT_FALSE(opt.Validate().ok());
  opt.fault.max_retries = 3;
  opt.fault.drain_deadline_seconds = -0.5;
  EXPECT_FALSE(opt.Validate().ok());
  opt.fault.drain_deadline_seconds = 0;
  opt.fault.backoff_initial_us = 500;
  opt.fault.backoff_max_us = 100;
  EXPECT_FALSE(opt.Validate().ok());
}

// --- Injector determinism -------------------------------------------------

TEST(FaultInjectorTest, SameSeedSameFires) {
  const auto plan = *FaultPlan::Parse("pass:bitflip:p=0.2;upload:nan:every=3", 9);
  FaultInjector a(plan, 1);
  FaultInjector b(plan, 1);
  FaultInjector other_stream(plan, 2);
  std::vector<bool> fires_a, fires_b, fires_c;
  for (int i = 0; i < 200; ++i) {
    const auto site = (i % 2 == 0) ? gpu::DeviceFaultSite::kPass
                                   : gpu::DeviceFaultSite::kUpload;
    fires_a.push_back(a.OnDeviceOp(site, 64).kind != gpu::DeviceFault::Kind::kNone);
    fires_b.push_back(b.OnDeviceOp(site, 64).kind != gpu::DeviceFault::Kind::kNone);
    fires_c.push_back(other_stream.OnDeviceOp(site, 64).kind !=
                      gpu::DeviceFault::Kind::kNone);
  }
  EXPECT_EQ(fires_a, fires_b);       // reproducible
  EXPECT_NE(fires_a, fires_c);       // decorrelated across streams
  EXPECT_GT(a.fires(), 0u);
  EXPECT_EQ(a.fires(), b.fires());
}

// --- The post-sort guard (property test) ----------------------------------

// An inner sorter that sorts correctly, then corrupts one element of the
// first run for its first `corrupt_batches` batches — a deterministic stand-in
// for a flaky device, independent of the GPU seam.
class CorruptingSorter final : public sort::Sorter {
 public:
  CorruptingSorter(gpu::DeviceFault::Kind kind, int corrupt_batches)
      : inner_(hwmodel::kPentium4_3400), kind_(kind), remaining_(corrupt_batches) {}

  void Sort(std::span<float> data) override {
    std::span<float> runs[] = {data};
    SortRuns(runs);
  }
  void SortRuns(std::span<std::span<float>> runs) override {
    inner_.SortRuns(runs);
    set_last_run(inner_.last_run());
    if (remaining_ > 0 && !runs.empty() && !runs[0].empty()) {
      --remaining_;
      float& v = runs[0][runs[0].size() / 2];
      v = gpu::CorruptValue(v, kind_, /*bit=*/12);
    }
  }
  const sort::SortRunInfo& last_run() const override { return last_run_; }
  const char* name() const override { return "corrupting"; }

 protected:
  void set_last_run(const sort::SortRunInfo& info) override { last_run_ = info; }

 private:
  sort::StdSortSorter inner_;
  const gpu::DeviceFault::Kind kind_;
  int remaining_;
  sort::SortRunInfo last_run_;
};

TEST(ResilientSorterTest, GuardCatchesEveryCorruptionKindAcrossSeeds) {
  // Property: whatever single-value damage a pass inflicts — a flipped
  // mantissa/exponent bit, a NaN, a silent half-truncation — the guard
  // detects it and the retried result equals an honest sort. Values are
  // drawn with full f32 precision so half-truncation is never a no-op.
  const gpu::DeviceFault::Kind kinds[] = {gpu::DeviceFault::Kind::kBitFlip,
                                          gpu::DeviceFault::Kind::kNan,
                                          gpu::DeviceFault::Kind::kTruncateHalf};
  for (const auto kind : kinds) {
    for (unsigned seed = 1; seed <= 5; ++seed) {
      stream::StreamGenerator gen(
          {.distribution = stream::Distribution::kUniformReal, .seed = seed});
      std::vector<float> data = gen.Take(512);
      std::vector<float> expected = data;
      std::sort(expected.begin(), expected.end());

      CorruptingSorter flaky(kind, /*corrupt_batches=*/1);
      sort::QuicksortSorter fallback(hwmodel::kPentium4_3400);
      sort::ResilientSorter sorter(&flaky, &fallback, nullptr, nullptr, {}, "t.",
                                   sort::ResilienceOptions{});
      sorter.Sort(data);

      EXPECT_EQ(data, expected) << "kind " << static_cast<int>(kind) << " seed "
                                << seed;
      EXPECT_EQ(sorter.stats().sort_retries, 1u);
      EXPECT_EQ(sorter.stats().windows_quarantined, 0u);
      EXPECT_EQ(sorter.last_quarantine_mask(), 0u);
    }
  }
}

TEST(ResilientSorterTest, ExhaustedRetriesFallBackToCpu) {
  std::vector<float> data = ZipfStream(256, 3);
  std::vector<float> expected = data;
  std::sort(expected.begin(), expected.end());

  CorruptingSorter flaky(gpu::DeviceFault::Kind::kBitFlip, /*corrupt_batches=*/100);
  sort::QuicksortSorter fallback(hwmodel::kPentium4_3400);
  sort::ResilienceOptions opts;
  opts.max_retries = 2;
  opts.backoff_initial_us = 1;  // keep the test fast
  opts.backoff_max_us = 1;
  sort::ResilientSorter sorter(&flaky, &fallback, nullptr, nullptr, {}, "t.", opts);
  sorter.Sort(data);

  EXPECT_EQ(data, expected);
  EXPECT_EQ(sorter.stats().sort_retries, 2u);
  EXPECT_EQ(sorter.stats().cpu_fallbacks, 1u);
  EXPECT_EQ(sorter.last_quarantine_mask(), 0u);
}

TEST(ResilientSorterTest, QuarantinesWhenFallbackDisabled) {
  std::vector<float> data = ZipfStream(256, 4);
  const std::vector<float> original = data;

  CorruptingSorter flaky(gpu::DeviceFault::Kind::kNan, /*corrupt_batches=*/100);
  sort::ResilienceOptions opts;
  opts.max_retries = 1;
  opts.cpu_fallback = false;
  opts.backoff_initial_us = 1;
  opts.backoff_max_us = 1;
  sort::ResilientSorter sorter(&flaky, nullptr, nullptr, nullptr, {}, "t.", opts);
  sorter.Sort(data);

  EXPECT_EQ(sorter.last_quarantine_mask(), 1u);
  EXPECT_EQ(sorter.stats().windows_quarantined, 1u);
  EXPECT_EQ(sorter.stats().elements_dropped, 256u);
  // The quarantined run is restored to its pre-sort contents, not left
  // half-damaged.
  EXPECT_EQ(data, original);
}

// --- End-to-end healing equivalence ---------------------------------------

struct Reports {
  FrequencyReport hitters;
  QuantileReport median;
  QuantileReport tail;
};

// gtest's ASSERT macros need a void return, so the body is a lambda.
Reports RunEstimators(Options opt, const std::vector<float>& data) {
  Reports out;
  [&]() {
    {
      FrequencyEstimator fe(opt);
      ASSERT_TRUE(fe.ObserveBatch(data).ok());
      ASSERT_TRUE(fe.Flush().ok());
      out.hitters = fe.HeavyHitters(0.01);
    }
    {
      QuantileEstimator qe(opt);
      ASSERT_TRUE(qe.ObserveBatch(data).ok());
      ASSERT_TRUE(qe.Flush().ok());
      out.median = qe.Quantile(0.5);
      out.tail = qe.Quantile(0.99);
    }
  }();
  return out;
}

TEST(FaultRecoveryTest, TransientFaultsLeaveReportsBitIdentical) {
  // Transient corruption and recoverable device loss are repaired by
  // retry / CPU re-sort, so every query answer must be bit-identical to the
  // fault-free run — serial and pipelined alike.
  const auto data = ZipfStream(40000, 11);
  Options clean;
  clean.epsilon = 0.005;
  clean.backend = Backend::kGpuPbsn;
  const Reports baseline = RunEstimators(clean, data);

  Options faulty = clean;
  faulty.fault.plan = *FaultPlan::Parse(
      "pass:bitflip:every=4;readback:nan:p=0.05;upload:half:every=9;"
      "pass:lost:every=25,max=3", 21);
  faulty.fault.backoff_initial_us = 1;
  faulty.fault.backoff_max_us = 1;
  const Reports serial = RunEstimators(faulty, data);
  EXPECT_EQ(serial.hitters, baseline.hitters);
  EXPECT_EQ(serial.median, baseline.median);
  EXPECT_EQ(serial.tail, baseline.tail);

  faulty.num_sort_workers = 4;
  faulty.fault.plan = *FaultPlan::Parse(
      "pass:bitflip:every=4;readback:nan:p=0.05;"
      "queue:stall:every=10,stall_us=200", 21);
  const Reports pipelined = RunEstimators(faulty, data);
  EXPECT_EQ(pipelined.hitters, baseline.hitters);
  EXPECT_EQ(pipelined.median, baseline.median);
  EXPECT_EQ(pipelined.tail, baseline.tail);
}

TEST(FaultRecoveryTest, RepeatedDeviceLossDegradesToCpuAndStaysCorrect) {
  const auto data = ZipfStream(20000, 5);
  Options clean;
  clean.epsilon = 0.005;
  clean.backend = Backend::kGpuPbsn;
  const Reports baseline = RunEstimators(clean, data);

  Options faulty = clean;
  faulty.fault.plan = *FaultPlan::Parse("pass:lost:every=1", 2);  // device is gone
  faulty.fault.backoff_initial_us = 1;
  faulty.fault.backoff_max_us = 1;
  FrequencyEstimator fe(faulty);
  ASSERT_TRUE(fe.ObserveBatch(data).ok());
  ASSERT_TRUE(fe.Flush().ok());
  EXPECT_EQ(fe.HeavyHitters(0.01), baseline.hitters);
  const FaultStats stats = fe.fault_stats();
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_GT(stats.cpu_fallbacks, 0u);
  EXPECT_EQ(stats.windows_quarantined, 0u);
}

TEST(FaultRecoveryTest, QuarantineWidensReportedBounds) {
  // With the CPU fallback disabled and persistent corruption, windows are
  // quarantined: the answers cover fewer elements and both reports must say
  // so instead of pretending full coverage.
  const auto data = ZipfStream(20000, 7);
  Options clean;
  clean.epsilon = 0.005;
  clean.backend = Backend::kGpuPbsn;
  const Reports baseline = RunEstimators(clean, data);

  Options faulty = clean;
  faulty.fault.plan = *FaultPlan::Parse("readback:bitflip:every=2", 13);
  faulty.fault.cpu_fallback = false;
  faulty.fault.max_retries = 1;
  faulty.fault.backoff_initial_us = 1;
  faulty.fault.backoff_max_us = 1;

  FrequencyEstimator fe(faulty);
  ASSERT_TRUE(fe.ObserveBatch(data).ok());
  ASSERT_TRUE(fe.Flush().ok());
  const FrequencyReport hitters = fe.HeavyHitters(0.01);
  EXPECT_GT(hitters.windows_quarantined, 0u);
  EXPECT_GT(hitters.elements_dropped, 0u);
  // The bound is ceil(epsilon * covered) + dropped: the epsilon term shrinks
  // with the lost coverage, the additive term dominates.
  EXPECT_GE(hitters.error_bound, hitters.elements_dropped);
  EXPECT_GT(hitters.error_bound, baseline.hitters.error_bound);
  EXPECT_LT(hitters.window_coverage, baseline.hitters.window_coverage);
  EXPECT_EQ(fe.fault_stats().windows_quarantined, hitters.windows_quarantined);

  QuantileEstimator qe(faulty);
  ASSERT_TRUE(qe.ObserveBatch(data).ok());
  ASSERT_TRUE(qe.Flush().ok());
  const QuantileReport median = qe.Quantile(0.5);
  EXPECT_GT(median.windows_quarantined, 0u);
  EXPECT_GT(median.elements_dropped, 0u);
  EXPECT_GT(median.rank_error_bound, baseline.median.rank_error_bound);
}

// --- Pipeline failure paths (satellite bugfix) ----------------------------

TEST(PipelineFailureTest, DeadDrainPropagatesStatusInsteadOfHanging) {
  // Regression: a DrainFn failure used to kill the drain thread silently;
  // once the in-flight cap filled, Observe() blocked forever. Now the first
  // failure poisons the pipeline and Submit()/WaitIdle() return it.
  constexpr std::uint64_t kWindow = 64;
  sort::StdSortSorter sorter_a(hwmodel::kPentium4_3400);
  sort::StdSortSorter sorter_b(hwmodel::kPentium4_3400);
  stream::PipelineConfig config;
  config.window_size = kWindow;
  config.max_batches_in_flight = 2;
  int drained = 0;
  stream::SortPipeline pipeline(
      config, {&sorter_a, &sorter_b},
      [&drained](std::vector<float>&&, const sort::SortRunInfo&, std::uint64_t) {
        ++drained;
        return Status::Internal("summary thread exploded");
      });

  Status status = Status::Ok();
  for (int b = 0; b < 50 && status.ok(); ++b) {
    std::vector<float> batch(kWindow, static_cast<float>(b));
    status = pipeline.Submit(std::move(batch));
  }
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kInternal);
  EXPECT_EQ(drained, 1);  // the poisoned drain stopped consuming
  EXPECT_EQ(pipeline.WaitIdle().code(), Status::Code::kInternal);
}

TEST(PipelineFailureTest, DrainDeadlineTurnsBackpressureIntoStatus) {
  // One slow drain + a cap of one batch: Submit() blocks on backpressure and
  // must give up with kDeadlineExceeded after the configured deadline rather
  // than waiting indefinitely.
  constexpr std::uint64_t kWindow = 64;
  sort::StdSortSorter sorter(hwmodel::kPentium4_3400);
  stream::PipelineConfig config;
  config.window_size = kWindow;
  config.max_batches_in_flight = 1;
  config.drain_deadline_seconds = 0.05;
  stream::SortPipeline pipeline(
      config, {&sorter},
      [](std::vector<float>&&, const sort::SortRunInfo&, std::uint64_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        return Status::Ok();
      });

  Status status = Status::Ok();
  for (int b = 0; b < 8 && status.ok(); ++b) {
    std::vector<float> batch(kWindow, static_cast<float>(b));
    status = pipeline.Submit(std::move(batch));
  }
  EXPECT_EQ(status.code(), Status::Code::kDeadlineExceeded);
}

}  // namespace
}  // namespace streamgpu::core
