// Property tests for the frequency summaries: Manku-Motwani lossy counting
// (sketch/lossy_counting.h, §5.1) and the Misra-Gries baseline
// (sketch/misra_gries.h). Both carry one-sided error guarantees that are
// checked against exact offline counts on several distributions.

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/exact.h"
#include "sketch/histogram.h"
#include "sketch/lossy_counting.h"
#include "sketch/misra_gries.h"

namespace streamgpu::sketch {
namespace {

// Drives LossyCounting the way the pipeline does: chunk, sort, histogram.
void FeedStream(LossyCounting* lc, std::span<const float> stream) {
  const std::uint64_t w = lc->window_width();
  for (std::size_t off = 0; off < stream.size(); off += w) {
    const std::size_t len = std::min<std::size_t>(w, stream.size() - off);
    std::vector<float> window(stream.begin() + off, stream.begin() + off + len);
    std::sort(window.begin(), window.end());
    lc->AddWindowHistogram(BuildHistogram(window), len);
  }
}

std::vector<float> ZipfStream(std::size_t n, int domain, double s, unsigned seed) {
  std::vector<double> cdf(domain);
  double total = 0;
  for (int r = 0; r < domain; ++r) {
    total += 1.0 / std::pow(r + 1.0, s);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> uni(0, 1);
  std::vector<float> out(n);
  for (float& v : out) {
    v = static_cast<float>(std::lower_bound(cdf.begin(), cdf.end(), uni(rng)) -
                           cdf.begin());
  }
  return out;
}

std::vector<float> UniformStream(std::size_t n, int domain, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> d(0, domain - 1);
  std::vector<float> out(n);
  for (float& v : out) v = static_cast<float>(d(rng));
  return out;
}

struct FreqCase {
  double epsilon;
  bool zipf;
  std::size_t n;
};

class LossyCountingProperty : public ::testing::TestWithParam<FreqCase> {};

TEST_P(LossyCountingProperty, OneSidedErrorBound) {
  const FreqCase& p = GetParam();
  const auto stream = p.zipf ? ZipfStream(p.n, 200, 1.2, 11) : UniformStream(p.n, 200, 11);
  LossyCounting lc(p.epsilon);
  FeedStream(&lc, stream);
  ASSERT_EQ(lc.stream_length(), p.n);

  const auto exact = ExactCounts(stream);
  const auto bound = static_cast<std::uint64_t>(
      std::ceil(p.epsilon * static_cast<double>(p.n)));
  for (const auto& [value, truth] : exact) {
    const std::uint64_t est = lc.EstimateCount(value);
    EXPECT_LE(est, truth) << "overestimate for " << value;
    EXPECT_GE(est + bound, truth) << "undercount beyond epsilon*N for " << value;
  }
}

TEST_P(LossyCountingProperty, NoFalseNegatives) {
  const FreqCase& p = GetParam();
  const auto stream = p.zipf ? ZipfStream(p.n, 200, 1.2, 12) : UniformStream(p.n, 200, 12);
  LossyCounting lc(p.epsilon);
  FeedStream(&lc, stream);

  for (double support : {0.01, 0.05, 0.1}) {
    if (support <= p.epsilon) continue;
    const auto reported = lc.HeavyHitters(support);
    const auto truth = ExactHeavyHitters(stream, support);
    for (const auto& [value, f] : truth) {
      const bool found = std::any_of(reported.begin(), reported.end(),
                                     [v = value](const auto& r) { return r.first == v; });
      EXPECT_TRUE(found) << "missing heavy hitter " << value << " (" << f << ") at s="
                         << support;
    }
    // No false positive below (s - eps) * N: estimates never overcount, so
    // every reported value's true frequency reaches the relaxed threshold.
    const auto exact = ExactCounts(stream);
    const double floor = (support - p.epsilon) * static_cast<double>(p.n);
    for (const auto& [value, est] : reported) {
      EXPECT_GE(static_cast<double>(exact.at(value)), floor) << value;
    }
  }
}

TEST_P(LossyCountingProperty, SpaceIsBounded) {
  const FreqCase& p = GetParam();
  const auto stream = p.zipf ? ZipfStream(p.n, 5000, 1.1, 13) : UniformStream(p.n, 5000, 13);
  LossyCounting lc(p.epsilon);
  FeedStream(&lc, stream);
  // O((1/eps) log(eps N)) worst case; allow a comfortable constant.
  const double cap =
      (1.0 / p.epsilon) *
      std::max(1.0, std::log2(p.epsilon * static_cast<double>(p.n) + 2.0)) * 8.0;
  EXPECT_LE(static_cast<double>(lc.summary_size()), cap);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LossyCountingProperty,
    ::testing::Values(FreqCase{0.01, true, 50000}, FreqCase{0.01, false, 50000},
                      FreqCase{0.005, true, 100000}, FreqCase{0.005, false, 100000},
                      FreqCase{0.002, true, 200000}, FreqCase{0.05, true, 10000},
                      FreqCase{0.05, false, 10000}),
    [](const ::testing::TestParamInfo<FreqCase>& info) {
      return std::string(info.param.zipf ? "zipf" : "uniform") + "_eps" +
             std::to_string(static_cast<int>(1.0 / info.param.epsilon)) + "_n" +
             std::to_string(info.param.n);
    });

TEST(LossyCountingTest, WindowWidthIsCeilOfInverseEpsilon) {
  EXPECT_EQ(LossyCounting(0.001).window_width(), 1000u);
  EXPECT_EQ(LossyCounting(0.0003).window_width(), 3334u);
  EXPECT_EQ(LossyCounting(0.5).window_width(), 2u);
}

TEST(LossyCountingTest, SingletonsDeletedAfterWindow) {
  // §5.1: "elements with a frequency of unity are deleted from the summary."
  LossyCounting lc(0.1);  // window width 10
  std::vector<float> window{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};  // all distinct
  std::sort(window.begin(), window.end());
  lc.AddWindowHistogram(BuildHistogram(window), window.size());
  EXPECT_EQ(lc.summary_size(), 0u);
}

TEST(LossyCountingTest, RepeatedValueSurvivesCompression) {
  LossyCounting lc(0.1);
  std::vector<float> window{5, 5, 5, 5, 5, 1, 2, 3, 4, 6};
  std::sort(window.begin(), window.end());
  lc.AddWindowHistogram(BuildHistogram(window), window.size());
  EXPECT_EQ(lc.EstimateCount(5.0f), 5u);
  EXPECT_EQ(lc.EstimateCount(1.0f), 0u);  // compressed away
}

TEST(LossyCountingTest, PartialFinalWindow) {
  LossyCounting lc(0.1);
  std::vector<float> window{7, 7, 7};
  lc.AddWindowHistogram(BuildHistogram(window), window.size());
  EXPECT_EQ(lc.stream_length(), 3u);
  EXPECT_EQ(lc.EstimateCount(7.0f), 3u);
}

TEST(LossyCountingTest, RejectsOversizedWindow) {
  LossyCounting lc(0.1);
  std::vector<float> window(11, 1.0f);
  EXPECT_DEATH(lc.AddWindowHistogram(BuildHistogram(window), window.size()),
               "window larger");
}

TEST(LossyCountingTest, OpCostsAccumulate) {
  LossyCounting lc(0.01);
  auto stream = ZipfStream(10000, 100, 1.2, 14);
  FeedStream(&lc, stream);
  EXPECT_GT(lc.op_costs().merged_entries, 0u);
  EXPECT_GT(lc.op_costs().compressed_entries, 0u);
}

// --- Misra-Gries baseline. ---

class MisraGriesProperty : public ::testing::TestWithParam<FreqCase> {};

TEST_P(MisraGriesProperty, OneSidedErrorBound) {
  const FreqCase& p = GetParam();
  const auto stream = p.zipf ? ZipfStream(p.n, 200, 1.2, 21) : UniformStream(p.n, 200, 21);
  MisraGries mg(p.epsilon);
  mg.ObserveBatch(stream);
  ASSERT_EQ(mg.stream_length(), p.n);

  const auto exact = ExactCounts(stream);
  const auto bound = static_cast<std::uint64_t>(
      std::ceil(p.epsilon * static_cast<double>(p.n)));
  for (const auto& [value, truth] : exact) {
    const std::uint64_t est = mg.EstimateCount(value);
    EXPECT_LE(est, truth);
    EXPECT_GE(est + bound, truth);
  }
  EXPECT_LE(mg.summary_size(), static_cast<std::size_t>(std::ceil(1.0 / p.epsilon)));
}

TEST_P(MisraGriesProperty, NoFalseNegatives) {
  const FreqCase& p = GetParam();
  const auto stream = p.zipf ? ZipfStream(p.n, 200, 1.2, 22) : UniformStream(p.n, 200, 22);
  MisraGries mg(p.epsilon);
  mg.ObserveBatch(stream);
  for (double support : {0.02, 0.1}) {
    if (support <= p.epsilon) continue;
    const auto reported = mg.HeavyHitters(support);
    for (const auto& [value, f] : ExactHeavyHitters(stream, support)) {
      const bool found = std::any_of(reported.begin(), reported.end(),
                                     [v = value](const auto& r) { return r.first == v; });
      EXPECT_TRUE(found) << value;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MisraGriesProperty,
    ::testing::Values(FreqCase{0.01, true, 50000}, FreqCase{0.01, false, 50000},
                      FreqCase{0.005, true, 100000}, FreqCase{0.05, false, 10000}),
    [](const ::testing::TestParamInfo<FreqCase>& info) {
      return std::string(info.param.zipf ? "zipf" : "uniform") + "_eps" +
             std::to_string(static_cast<int>(1.0 / info.param.epsilon)) + "_n" +
             std::to_string(info.param.n);
    });

TEST(MisraGriesTest, DecrementReclaimsSpace) {
  MisraGries mg(0.5);  // two counters
  mg.Observe(1.0f);
  mg.Observe(2.0f);
  EXPECT_EQ(mg.summary_size(), 2u);
  mg.Observe(3.0f);  // decrement-all: both counters drop to zero
  EXPECT_EQ(mg.summary_size(), 0u);
}

TEST(MisraGriesTest, MajorityElementAlwaysSurvives) {
  std::mt19937 rng(33);
  std::vector<float> stream;
  for (int i = 0; i < 6000; ++i) stream.push_back(9.0f);
  for (int i = 0; i < 4000; ++i) {
    stream.push_back(static_cast<float>(rng() % 1000 + 100));
  }
  std::shuffle(stream.begin(), stream.end(), rng);
  MisraGries mg(0.1);
  mg.ObserveBatch(stream);
  EXPECT_GE(mg.EstimateCount(9.0f), 5000u);
}

}  // namespace
}  // namespace streamgpu::sketch
