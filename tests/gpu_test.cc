// Tests for the GPU simulator substrate: surfaces, the rasterizer's
// fixed-function path (the paper's Routines 4.1 and 4.2), fragment programs,
// and the device's transfer/statistics accounting.

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "gpu/device.h"
#include "gpu/rasterizer.h"
#include "gpu/surface.h"
#include "gpu/vertex.h"

namespace streamgpu::gpu {
namespace {

std::vector<float> RandomValues(std::size_t n, unsigned seed, float lo = 0.0f,
                                float hi = 1000.0f) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  std::vector<float> out(n);
  for (float& v : out) v = dist(rng);
  return out;
}

// Fills one channel of a surface from a row-major array.
void FillChannelFrom(Surface* s, int c, const std::vector<float>& data) {
  ASSERT_EQ(data.size(), s->num_texels());
  for (int y = 0; y < s->height(); ++y) {
    for (int x = 0; x < s->width(); ++x) {
      s->Set(c, x, y, data[static_cast<std::size_t>(y) * s->width() + x]);
    }
  }
}

TEST(SurfaceTest, ResetZeroFills) {
  Surface s(4, 3, Format::kFloat32);
  for (int c = 0; c < kNumChannels; ++c) {
    for (int y = 0; y < 3; ++y) {
      for (int x = 0; x < 4; ++x) EXPECT_EQ(s.Get(c, x, y), 0.0f);
    }
  }
  EXPECT_EQ(s.width(), 4);
  EXPECT_EQ(s.height(), 3);
  EXPECT_EQ(s.num_texels(), 12u);
  EXPECT_EQ(s.SizeBytes(), 12u * 16u);
}

TEST(SurfaceTest, Float16SurfaceQuantizesOnWrite) {
  Surface s(2, 2, Format::kFloat16);
  s.Set(0, 0, 0, 2049.0f);  // not representable in binary16
  EXPECT_EQ(s.Get(0, 0, 0), 2048.0f);
  EXPECT_EQ(s.SizeBytes(), 4u * 8u);
}

TEST(SurfaceTest, Float32SurfaceStoresExactly) {
  Surface s(2, 2, Format::kFloat32);
  s.Set(0, 0, 0, 2049.0f);
  EXPECT_EQ(s.Get(0, 0, 0), 2049.0f);
}

TEST(SurfaceTest, ChannelsAreIndependent) {
  Surface s(2, 2, Format::kFloat32);
  for (int c = 0; c < kNumChannels; ++c) s.Set(c, 1, 1, static_cast<float>(c + 10));
  for (int c = 0; c < kNumChannels; ++c) {
    EXPECT_EQ(s.Get(c, 1, 1), static_cast<float>(c + 10));
    EXPECT_EQ(s.Get(c, 0, 0), 0.0f);
  }
}

TEST(SurfaceTest, FillChannel) {
  Surface s(3, 3, Format::kFloat32);
  s.FillChannel(2, 7.5f);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      EXPECT_EQ(s.Get(2, x, y), 7.5f);
      EXPECT_EQ(s.Get(0, x, y), 0.0f);
    }
  }
}

// --- Routine 4.1: Copy — identity texcoords copy texture to framebuffer. ---

TEST(RasterizerTest, CopyQuadIsIdentity) {
  const int w = 8;
  const int h = 4;
  Surface tex(w, h, Format::kFloat32);
  Surface fb(w, h, Format::kFloat32);
  GpuStats stats;
  const auto data = RandomValues(static_cast<std::size_t>(w) * h, 1);
  for (int c = 0; c < kNumChannels; ++c) FillChannelFrom(&tex, c, data);

  Rasterizer::DrawQuad(tex, Quad::Identity(0, 0, w, h), BlendOp::kReplace, &fb, &stats);

  for (int c = 0; c < kNumChannels; ++c) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        EXPECT_EQ(fb.Get(c, x, y), tex.Get(c, x, y)) << c << "," << x << "," << y;
      }
    }
  }
  EXPECT_EQ(stats.fragments_shaded, static_cast<std::uint64_t>(w) * h);
  EXPECT_EQ(stats.blend_fragments, 0u);  // REPLACE is not a blend
  EXPECT_EQ(stats.draw_calls, 1u);
}

// --- Routine 4.2: ComputeMin — mirrored texcoords + MIN blending compare ---
// --- element i against element (W*H - 1 - i).                            ---

TEST(RasterizerTest, ComputeMinMatchesScalarReference) {
  const int w = 8;
  const int h = 4;  // one block spanning all rows
  Surface tex(w, h, Format::kFloat32);
  Surface fb(w, h, Format::kFloat32);
  GpuStats stats;
  const auto data = RandomValues(static_cast<std::size_t>(w) * h, 2);
  for (int c = 0; c < kNumChannels; ++c) FillChannelFrom(&tex, c, data);

  // Seed the framebuffer with the texture contents (as the algorithm does).
  Rasterizer::DrawQuad(tex, Quad::Identity(0, 0, w, h), BlendOp::kReplace, &fb, &stats);
  // ComputeMin over the lower half: pixel (x, y) vs texel (w-1-x, h-1-y).
  const Quad min_quad = Quad::Make(0, 0, w, h / 2.0f,          //
                                   w, h, 0, h,                  //
                                   0, h / 2.0f, w, h / 2.0f);
  Rasterizer::DrawQuad(tex, min_quad, BlendOp::kMin, &fb, &stats);

  const std::size_t n = static_cast<std::size_t>(w) * h;
  for (int y = 0; y < h / 2; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * w + x;
      const float expected = std::min(data[i], data[n - 1 - i]);
      EXPECT_EQ(fb.Get(0, x, y), expected) << x << "," << y;
    }
  }
  // Upper half untouched.
  for (int y = h / 2; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      EXPECT_EQ(fb.Get(0, x, y), data[static_cast<std::size_t>(y) * w + x]);
    }
  }
}

TEST(RasterizerTest, MaxBlendKeepsMaximumPerChannel) {
  Surface tex(2, 1, Format::kFloat32);
  Surface fb(2, 1, Format::kFloat32);
  GpuStats stats;
  // Different values per channel: blending is a 4-wide vector op (§4.2.2).
  for (int c = 0; c < kNumChannels; ++c) {
    tex.Set(c, 0, 0, static_cast<float>(c));
    tex.Set(c, 1, 0, static_cast<float>(10 - c));
    fb.Set(c, 0, 0, 5.0f);
    fb.Set(c, 1, 0, 5.0f);
  }
  Rasterizer::DrawQuad(tex, Quad::Identity(0, 0, 2, 1), BlendOp::kMax, &fb, &stats);
  for (int c = 0; c < kNumChannels; ++c) {
    EXPECT_EQ(fb.Get(c, 0, 0), std::max(5.0f, static_cast<float>(c)));
    EXPECT_EQ(fb.Get(c, 1, 0), std::max(5.0f, static_cast<float>(10 - c)));
  }
  EXPECT_EQ(stats.blend_fragments, 2u);
  EXPECT_EQ(stats.ScalarComparisons(), 8u);
}

TEST(RasterizerTest, ReversedRowMappingHitsMirroredTexels) {
  // Row-block comparator of Fig. 2 (left): u(x) = 2*off + B - x.
  const int w = 8;
  Surface tex(w, 1, Format::kFloat32);
  Surface fb(w, 1, Format::kFloat32);
  GpuStats stats;
  for (int x = 0; x < w; ++x) tex.Set(0, x, 0, static_cast<float>(x));
  // Block B=8 at offset 0, min half covers x in [0,4): u from 8 down to 4.
  const Quad q = Quad::Make(0, 0, 4, 1,  //
                            8, 0, 4, 0,  //
                            4, 1, 8, 1);
  Rasterizer::DrawQuad(tex, q, BlendOp::kReplace, &fb, &stats);
  for (int x = 0; x < 4; ++x) {
    EXPECT_EQ(fb.Get(0, x, 0), static_cast<float>(7 - x)) << x;
  }
}

TEST(RasterizerTest, NonSeparableMappingUsesBilinearPath) {
  // A diagonal-swap mapping (u depends on y): exercises the general path.
  Surface tex(2, 2, Format::kFloat32);
  Surface fb(2, 2, Format::kFloat32);
  GpuStats stats;
  tex.Set(0, 0, 0, 1.0f);
  tex.Set(0, 1, 0, 2.0f);
  tex.Set(0, 0, 1, 3.0f);
  tex.Set(0, 1, 1, 4.0f);
  // Texcoords transpose the texture: corner (x,y) samples (y,x).
  const Quad q = Quad::Make(0, 0, 2, 2,  //
                            0, 0, 0, 2,  //
                            2, 2, 2, 0);
  Rasterizer::DrawQuad(tex, q, BlendOp::kReplace, &fb, &stats);
  EXPECT_EQ(fb.Get(0, 0, 0), 1.0f);
  EXPECT_EQ(fb.Get(0, 1, 0), 3.0f);  // transposed
  EXPECT_EQ(fb.Get(0, 0, 1), 2.0f);
  EXPECT_EQ(fb.Get(0, 1, 1), 4.0f);
}

TEST(RasterizerTest, QuadClipsToFramebuffer) {
  Surface tex(4, 4, Format::kFloat32);
  Surface fb(2, 2, Format::kFloat32);
  GpuStats stats;
  tex.FillChannel(0, 9.0f);
  Rasterizer::DrawQuad(tex, Quad::Identity(0, 0, 4, 4), BlendOp::kReplace, &fb, &stats);
  EXPECT_EQ(stats.fragments_shaded, 4u);  // clipped to the 2x2 framebuffer
  EXPECT_EQ(fb.Get(0, 1, 1), 9.0f);
}

TEST(RasterizerTest, Float16TargetQuantizesBlendResults) {
  Surface tex(1, 1, Format::kFloat32);
  Surface fb(1, 1, Format::kFloat16);
  GpuStats stats;
  tex.Set(0, 0, 0, 2049.0f);
  Rasterizer::DrawQuad(tex, Quad::Identity(0, 0, 1, 1), BlendOp::kReplace, &fb, &stats);
  EXPECT_EQ(fb.Get(0, 0, 0), 2048.0f);
}

TEST(RasterizerTest, FragmentProgramWritesAndCounts) {
  Surface tex(4, 2, Format::kFloat32);
  Surface fb(4, 2, Format::kFloat32);
  GpuStats stats;
  Rasterizer::RunFragmentProgram(
      tex, 0, 0, 4, 2, /*instructions_per_fragment=*/53, /*fetches_per_fragment=*/2,
      [](int x, int y, const Surface&, float out[kNumChannels]) {
        for (int c = 0; c < kNumChannels; ++c) out[c] = static_cast<float>(x + 10 * y);
      },
      &fb, &stats);
  EXPECT_EQ(fb.Get(0, 3, 1), 13.0f);
  EXPECT_EQ(stats.fragments_shaded, 8u);
  EXPECT_EQ(stats.program_fragments, 8u);
  EXPECT_EQ(stats.program_instructions, 8u * 53u);
  EXPECT_EQ(stats.texture_fetches, 16u);
  EXPECT_EQ(stats.blend_fragments, 0u);
}

// --- GpuDevice: transfers, bus accounting, state. ---

TEST(DeviceTest, UploadReadbackRoundTrip) {
  GpuDevice dev;
  const auto tex = dev.CreateTexture(4, 4, Format::kFloat32);
  const auto data = RandomValues(16, 3);
  dev.UploadChannel(tex, 0, data);
  dev.BindFramebuffer(4, 4, Format::kFloat32);
  dev.SetBlend(BlendOp::kReplace);
  dev.DrawQuad(tex, Quad::Identity(0, 0, 4, 4));
  std::vector<float> out(16);
  dev.ReadbackChannel(0, out);
  EXPECT_EQ(out, data);
}

TEST(DeviceTest, BusByteAccounting) {
  GpuDevice dev;
  const auto tex = dev.CreateTexture(8, 8, Format::kFloat32);
  const std::vector<float> data(64, 1.0f);
  dev.UploadChannel(tex, 0, data);
  EXPECT_EQ(dev.stats().bytes_uploaded, 64u * 4u);
  dev.BindFramebuffer(8, 8, Format::kFloat32);
  std::vector<float> out(64);
  dev.ReadbackChannel(0, out);
  EXPECT_EQ(dev.stats().bytes_readback, 64u * 4u);
  EXPECT_EQ(dev.stats().framebuffer_binds, 1u);
}

TEST(DeviceTest, Float16HalvesBusBytes) {
  GpuDevice dev;
  const auto tex = dev.CreateTexture(8, 8, Format::kFloat16);
  const std::vector<float> data(64, 1.0f);
  dev.UploadChannel(tex, 0, data);
  EXPECT_EQ(dev.stats().bytes_uploaded, 64u * 2u);
}

TEST(DeviceTest, CopyFramebufferToTexture) {
  GpuDevice dev;
  const auto tex = dev.CreateTexture(4, 2, Format::kFloat32);
  const auto data = RandomValues(8, 4);
  dev.UploadChannel(tex, 1, data);
  dev.BindFramebuffer(4, 2, Format::kFloat32);
  dev.SetBlend(BlendOp::kReplace);
  dev.DrawQuad(tex, Quad::Identity(0, 0, 4, 2));

  const auto tex2 = dev.CreateTexture(4, 2, Format::kFloat32);
  dev.CopyFramebufferToTexture(tex2);
  for (int x = 0; x < 4; ++x) {
    EXPECT_EQ(dev.Texture(tex2).Get(1, x, 0), data[x]);
  }
  EXPECT_EQ(dev.stats().fb_to_texture_copies, 1u);
}

TEST(DeviceTest, StatsAccumulateAndReset) {
  GpuDevice dev;
  const auto tex = dev.CreateTexture(2, 2, Format::kFloat32);
  dev.BindFramebuffer(2, 2, Format::kFloat32);
  dev.SetBlend(BlendOp::kMin);
  dev.DrawQuad(tex, Quad::Identity(0, 0, 2, 2));
  dev.DrawQuad(tex, Quad::Identity(0, 0, 2, 2));
  EXPECT_EQ(dev.stats().draw_calls, 2u);
  EXPECT_EQ(dev.stats().blend_fragments, 8u);
  dev.ResetStats();
  EXPECT_EQ(dev.stats().draw_calls, 0u);
  EXPECT_EQ(dev.stats().blend_fragments, 0u);
}

TEST(DeviceTest, StatsDifferenceOperator) {
  GpuStats a;
  a.draw_calls = 10;
  a.fragments_shaded = 100;
  GpuStats b;
  b.draw_calls = 4;
  b.fragments_shaded = 40;
  const GpuStats d = a - b;
  EXPECT_EQ(d.draw_calls, 6u);
  EXPECT_EQ(d.fragments_shaded, 60u);
}

TEST(DeviceTest, BlendWithInfinityPadding) {
  // +inf padding (used to pad sort inputs) must behave under MIN/MAX.
  GpuDevice dev;
  const float inf = std::numeric_limits<float>::infinity();
  const auto tex = dev.CreateTexture(2, 1, Format::kFloat32);
  dev.UploadChannel(tex, 0, std::vector<float>{inf, 3.0f});
  dev.BindFramebuffer(2, 1, Format::kFloat32);
  dev.SetBlend(BlendOp::kReplace);
  dev.DrawQuad(tex, Quad::Identity(0, 0, 2, 1));
  dev.SetBlend(BlendOp::kMin);
  // Swap mapping: pixel 0 sees texel 1 and vice versa.
  dev.DrawQuad(tex, Quad::Make(0, 0, 2, 1, 2, 0, 0, 0, 0, 1, 2, 1));
  std::vector<float> out(2);
  dev.ReadbackChannel(0, out);
  EXPECT_EQ(out[0], 3.0f);   // min(inf, 3)
  EXPECT_EQ(out[1], 3.0f);   // min(3, inf)
}

}  // namespace
}  // namespace streamgpu::gpu
