// Tests for the GPU database operations (gpudb/gpu_relation.h): depth-test
// predicates, occlusion-query counting, range aggregates, and k-th largest
// selection — validated against exact host computation.

#include "gpudb/gpu_relation.h"

#include <algorithm>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "hwmodel/hardware_profiles.h"

namespace streamgpu::gpudb {
namespace {

std::vector<float> RandomColumn(std::size_t n, unsigned seed, float lo = -1000,
                                float hi = 1000) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> d(lo, hi);
  std::vector<float> v(n);
  for (float& x : v) x = d(rng);
  return v;
}

std::uint64_t ExactCount(const std::vector<float>& col, Predicate p, float c) {
  std::uint64_t n = 0;
  for (float a : col) {
    switch (p) {
      case Predicate::kLess:
        n += a < c;
        break;
      case Predicate::kLessEqual:
        n += a <= c;
        break;
      case Predicate::kGreater:
        n += a > c;
        break;
      case Predicate::kGreaterEqual:
        n += a >= c;
        break;
      case Predicate::kEqual:
        n += a == c;
        break;
      case Predicate::kNotEqual:
        n += a != c;
        break;
    }
  }
  return n;
}

class GpuRelationPredicate : public ::testing::TestWithParam<Predicate> {};

TEST_P(GpuRelationPredicate, CountMatchesExactAcrossConstants) {
  const Predicate pred = GetParam();
  const auto column = RandomColumn(3000, 11);  // non-power-of-two: padding active
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra, column);
  ASSERT_EQ(rel.size(), 3000u);
  for (float c : {-2000.0f, -500.0f, -1.0f, 0.0f, 3.5f, 500.0f, 999.0f, 2000.0f}) {
    EXPECT_EQ(rel.Count(pred, c), ExactCount(column, pred, c)) << "c=" << c;
  }
  // Constants equal to actual data values (tie handling).
  for (int i = 0; i < 5; ++i) {
    const float c = column[static_cast<std::size_t>(i) * 601];
    EXPECT_EQ(rel.Count(pred, c), ExactCount(column, pred, c)) << "data c=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPredicates, GpuRelationPredicate,
                         ::testing::Values(Predicate::kLess, Predicate::kLessEqual,
                                           Predicate::kGreater, Predicate::kGreaterEqual,
                                           Predicate::kEqual, Predicate::kNotEqual),
                         [](const ::testing::TestParamInfo<Predicate>& info) {
                           switch (info.param) {
                             case Predicate::kLess:
                               return "Less";
                             case Predicate::kLessEqual:
                               return "LessEqual";
                             case Predicate::kGreater:
                               return "Greater";
                             case Predicate::kGreaterEqual:
                               return "GreaterEqual";
                             case Predicate::kEqual:
                               return "Equal";
                             case Predicate::kNotEqual:
                               return "NotEqual";
                           }
                           return "Unknown";
                         });

TEST(GpuRelationTest, CountRangeMatchesExact) {
  const auto column = RandomColumn(5000, 12);
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra, column);
  for (const auto& [lo, hi] : std::vector<std::pair<float, float>>{
           {-100, 100}, {0, 0}, {-1000, 1000}, {500, 600}, {-2000, -1500}}) {
    std::uint64_t exact = 0;
    for (float a : column) exact += a >= lo && a <= hi;
    EXPECT_EQ(rel.CountRange(lo, hi), exact) << lo << ".." << hi;
  }
}

TEST(GpuRelationTest, KthLargestMatchesSortedOrder) {
  auto column = RandomColumn(2048, 13);
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra, column);

  auto sorted = column;
  std::sort(sorted.begin(), sorted.end(), std::greater<float>());
  for (std::uint64_t k : {1u, 2u, 10u, 100u, 1024u, 2047u, 2048u}) {
    EXPECT_EQ(rel.KthLargest(k), sorted[k - 1]) << "k=" << k;
  }
}

TEST(GpuRelationTest, KthLargestWithDuplicates) {
  std::vector<float> column;
  for (int i = 0; i < 100; ++i) {
    column.push_back(7.0f);
    column.push_back(3.0f);
    column.push_back(-2.5f);
  }
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra, column);
  EXPECT_EQ(rel.KthLargest(1), 7.0f);
  EXPECT_EQ(rel.KthLargest(100), 7.0f);
  EXPECT_EQ(rel.KthLargest(101), 3.0f);
  EXPECT_EQ(rel.KthLargest(200), 3.0f);
  EXPECT_EQ(rel.KthLargest(201), -2.5f);
  EXPECT_EQ(rel.KthLargest(300), -2.5f);
}

TEST(GpuRelationTest, MedianViaKthLargest) {
  // The paper's quantile machinery generalizes [20]'s k-th largest; check
  // the simple exact connection on a small column.
  std::vector<float> column;
  for (int i = 1; i <= 101; ++i) column.push_back(static_cast<float>(i));
  std::mt19937 rng(14);
  std::shuffle(column.begin(), column.end(), rng);
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra, column);
  EXPECT_EQ(rel.KthLargest(51), 51.0f);
}

TEST(GpuRelationTest, NegativeAndSpecialValues) {
  std::vector<float> column{-0.0f, 0.0f, -1.5f, 1.5f, -1e30f, 1e30f, 42.0f};
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra, column);
  EXPECT_EQ(rel.Count(Predicate::kLess, 0.0f), 2u);     // -1.5 and -1e30
  EXPECT_EQ(rel.Count(Predicate::kEqual, 0.0f), 2u);    // -0.0 == 0.0
  EXPECT_EQ(rel.KthLargest(1), 1e30f);
  EXPECT_EQ(rel.KthLargest(7), -1e30f);
}

TEST(GpuRelationTest, QueriesChargeOcclusionCosts) {
  const auto column = RandomColumn(4096, 15);
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra, column);
  const auto before = rel.SimulatedCosts();
  rel.Count(Predicate::kLess, 0.0f);
  rel.KthLargest(5);
  const auto after = rel.SimulatedCosts();
  EXPECT_GT(after.setup_s, before.setup_s);  // per-occlusion-query latency
  EXPECT_GT(after.DeviceSeconds(), before.DeviceSeconds());
  EXPECT_GT(device.stats().occlusion_queries, 30u);  // ~32 binary-search steps
  EXPECT_GT(device.stats().depth_test_fragments, 0u);
}

TEST(GpuRelationTest, SingleElementColumn) {
  std::vector<float> column{5.0f};
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra, column);
  EXPECT_EQ(rel.Count(Predicate::kEqual, 5.0f), 1u);
  EXPECT_EQ(rel.Count(Predicate::kNotEqual, 5.0f), 0u);
  EXPECT_EQ(rel.KthLargest(1), 5.0f);
}

// --- Multi-column relations and semi-linear predicates ([20]). ---

TEST(MultiColumnTest, PerAttributeCounts) {
  const auto x = RandomColumn(2000, 31);
  const auto y = RandomColumn(2000, 32, 0, 10);
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra,
                  std::vector<std::span<const float>>{x, y});
  ASSERT_EQ(rel.num_columns(), 2u);
  for (float c : {-500.0f, 0.0f, 5.0f, 800.0f}) {
    EXPECT_EQ(rel.Count(Predicate::kLess, c, 0), ExactCount(x, Predicate::kLess, c));
    EXPECT_EQ(rel.Count(Predicate::kLess, c, 1), ExactCount(y, Predicate::kLess, c));
  }
  // Alternate attributes to exercise the depth reload path.
  EXPECT_EQ(rel.Count(Predicate::kGreaterEqual, 2.0f, 1),
            ExactCount(y, Predicate::kGreaterEqual, 2.0f));
  EXPECT_EQ(rel.Count(Predicate::kGreaterEqual, 2.0f, 0),
            ExactCount(x, Predicate::kGreaterEqual, 2.0f));
}

TEST(MultiColumnTest, KthLargestPerAttribute) {
  const auto x = RandomColumn(1024, 33);
  const auto y = RandomColumn(1024, 34, 0, 50);
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra,
                  std::vector<std::span<const float>>{x, y});
  auto sx = x;
  auto sy = y;
  std::sort(sx.begin(), sx.end(), std::greater<float>());
  std::sort(sy.begin(), sy.end(), std::greater<float>());
  EXPECT_EQ(rel.KthLargest(10, 0), sx[9]);
  EXPECT_EQ(rel.KthLargest(10, 1), sy[9]);
}

TEST(MultiColumnTest, SemiLinearPredicateMatchesExact) {
  const auto x = RandomColumn(3000, 35);
  const auto y = RandomColumn(3000, 36);
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra,
                  std::vector<std::span<const float>>{x, y});

  const std::vector<std::vector<float>> coeff_sets = {
      {1.0f, 1.0f}, {2.0f, -0.5f}, {-1.0f, 3.0f}, {0.0f, 1.0f}};
  for (const auto& coeffs : coeff_sets) {
    for (float c : {-1000.0f, 0.0f, 250.0f, 1500.0f}) {
      std::uint64_t exact = 0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        if (coeffs[0] * x[i] + coeffs[1] * y[i] < c) ++exact;
      }
      EXPECT_EQ(rel.CountLinear(coeffs, Predicate::kLess, c), exact)
          << coeffs[0] << "*x+" << coeffs[1] << "*y<" << c;
    }
  }
}

TEST(MultiColumnTest, SemiLinearHandlesMixedSignPadding) {
  // Mixed-sign coefficients turn the +inf padding into NaN; NaN must fail
  // every ordered comparison and pass NotEqual (with correction).
  std::vector<float> x{1.0f, 2.0f, 3.0f};  // padded to 4 texels
  std::vector<float> y{1.0f, 1.0f, 1.0f};
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra,
                  std::vector<std::span<const float>>{x, y});
  const std::vector<float> coeffs{1.0f, -1.0f};  // x - y: {0, 1, 2}, pad NaN
  EXPECT_EQ(rel.CountLinear(coeffs, Predicate::kLess, 1.5f), 2u);
  EXPECT_EQ(rel.CountLinear(coeffs, Predicate::kGreaterEqual, 1.0f), 2u);
  EXPECT_EQ(rel.CountLinear(coeffs, Predicate::kEqual, 0.0f), 1u);
  EXPECT_EQ(rel.CountLinear(coeffs, Predicate::kNotEqual, 0.0f), 2u);
}

TEST(MultiColumnTest, LinearThenColumnReloads) {
  const auto x = RandomColumn(500, 37);
  const auto y = RandomColumn(500, 38);
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra,
                  std::vector<std::span<const float>>{x, y});
  const std::vector<float> coeffs{1.0f, 1.0f};
  rel.CountLinear(coeffs, Predicate::kLess, 0.0f);
  // A plain count afterwards must reload the column and stay exact.
  EXPECT_EQ(rel.Count(Predicate::kLess, 100.0f, 0),
            ExactCount(x, Predicate::kLess, 100.0f));
}

// --- Boolean combinations ([20]) via the stencil buffer. ---

TEST(BooleanCombinationTest, ConjunctionMatchesExact) {
  const auto x = RandomColumn(3000, 41);
  const auto y = RandomColumn(3000, 42, 0, 100);
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra,
                  std::vector<std::span<const float>>{x, y});

  const GpuRelation::Clause c1{0, Predicate::kGreater, 0.0f};
  const GpuRelation::Clause c2{1, Predicate::kLess, 50.0f};
  std::uint64_t exact = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0f && y[i] < 50.0f) ++exact;
  }
  const GpuRelation::Clause clauses[] = {c1, c2};
  EXPECT_EQ(rel.CountConjunction(clauses), exact);
}

TEST(BooleanCombinationTest, ThreeWayConjunction) {
  const auto x = RandomColumn(2000, 43);
  const auto y = RandomColumn(2000, 44);
  const auto z = RandomColumn(2000, 45);
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra,
                  std::vector<std::span<const float>>{x, y, z});
  const GpuRelation::Clause clauses[] = {{0, Predicate::kGreaterEqual, -200.0f},
                                         {1, Predicate::kLess, 300.0f},
                                         {2, Predicate::kNotEqual, 0.0f}};
  std::uint64_t exact = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] >= -200.0f && y[i] < 300.0f && z[i] != 0.0f) ++exact;
  }
  EXPECT_EQ(rel.CountConjunction(clauses), exact);
}

TEST(BooleanCombinationTest, SingleClauseEqualsPlainCount) {
  const auto x = RandomColumn(1000, 46);
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra, x);
  const GpuRelation::Clause clauses[] = {{0, Predicate::kLess, 123.0f}};
  EXPECT_EQ(rel.CountConjunction(clauses), rel.Count(Predicate::kLess, 123.0f));
}

TEST(BooleanCombinationTest, DisjunctionByInclusionExclusion) {
  const auto x = RandomColumn(2500, 47);
  const auto y = RandomColumn(2500, 48);
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra,
                  std::vector<std::span<const float>>{x, y});
  const GpuRelation::Clause a{0, Predicate::kLess, -500.0f};
  const GpuRelation::Clause b{1, Predicate::kGreater, 500.0f};
  std::uint64_t exact = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < -500.0f || y[i] > 500.0f) ++exact;
  }
  EXPECT_EQ(rel.CountDisjunction(a, b), exact);
}

TEST(BooleanCombinationTest, RangeAsConjunctionOnOneAttribute) {
  const auto x = RandomColumn(1500, 49);
  gpu::GpuDevice device;
  GpuRelation rel(&device, hwmodel::kGeForce6800Ultra, x);
  const GpuRelation::Clause clauses[] = {{0, Predicate::kGreaterEqual, -100.0f},
                                         {0, Predicate::kLessEqual, 100.0f}};
  EXPECT_EQ(rel.CountConjunction(clauses), rel.CountRange(-100.0f, 100.0f));
}

TEST(StencilPathTest, StencilStateAndOps) {
  gpu::GpuDevice device;
  device.BindDepthBuffer(4, 2, 0.5f);
  device.BindStencilBuffer(4, 2, 0);
  EXPECT_EQ(device.StencilAt(0, 0), 0);

  // Increment where the depth test passes.
  device.SetDepthTest(gpu::DepthFunc::kLess, /*write_depth=*/false);
  device.SetStencilTest(true, gpu::GpuDevice::StencilFunc::kAlways, 0,
                        gpu::GpuDevice::StencilOp::kIncrement);
  device.DrawDepthOnlyQuad(0, 0, 4, 2, 0.1f);  // passes everywhere
  EXPECT_EQ(device.StencilAt(3, 1), 1);

  // Stencil-gated pass: only stencil==1 fragments are considered.
  device.SetStencilTest(true, gpu::GpuDevice::StencilFunc::kEqual, 1,
                        gpu::GpuDevice::StencilOp::kZero);
  device.BeginOcclusionQuery();
  device.DrawDepthOnlyQuad(0, 0, 2, 2, 0.1f);  // half the buffer
  EXPECT_EQ(device.EndOcclusionQuery(), 4u);
  EXPECT_EQ(device.StencilAt(0, 0), 0);  // zeroed on pass
  EXPECT_EQ(device.StencilAt(3, 1), 1);  // untouched outside the quad

  device.SetStencilTest(false);
}

TEST(MultiColumnTest, MismatchedColumnsDie) {
  std::vector<float> x{1, 2, 3};
  std::vector<float> y{1, 2};
  gpu::GpuDevice device;
  EXPECT_DEATH(GpuRelation(&device, hwmodel::kGeForce6800Ultra,
                           std::vector<std::span<const float>>{x, y}),
               "equal length");
}

TEST(DepthPathTest, DepthBufferStateAndWrites) {
  gpu::GpuDevice device;
  device.BindDepthBuffer(4, 4, 1.0f);
  EXPECT_EQ(device.DepthAt(0, 0), 1.0f);

  device.SetDepthTest(gpu::DepthFunc::kLess, /*write_depth=*/true);
  device.DrawDepthOnlyQuad(0, 0, 4, 4, 0.5f);  // 0.5 < 1.0 everywhere
  EXPECT_EQ(device.DepthAt(2, 3), 0.5f);

  // A farther quad fails the test and leaves depth untouched.
  device.DrawDepthOnlyQuad(0, 0, 4, 4, 0.9f);
  EXPECT_EQ(device.DepthAt(2, 3), 0.5f);

  // Without depth writes, passing fragments are counted but not stored.
  device.SetDepthTest(gpu::DepthFunc::kLess, /*write_depth=*/false);
  device.BeginOcclusionQuery();
  device.DrawDepthOnlyQuad(0, 0, 4, 4, 0.1f);
  EXPECT_EQ(device.EndOcclusionQuery(), 16u);
  EXPECT_EQ(device.DepthAt(2, 3), 0.5f);
}

TEST(DepthPathTest, NestedOcclusionQueryDies) {
  gpu::GpuDevice device;
  device.BindDepthBuffer(2, 2);
  device.BeginOcclusionQuery();
  EXPECT_DEATH(device.BeginOcclusionQuery(), "already active");
}

}  // namespace
}  // namespace streamgpu::gpudb
