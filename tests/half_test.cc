// Tests for the software binary16 conversion (gpu/half.h).

#include "gpu/half.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace streamgpu::gpu {
namespace {

TEST(HalfTest, ZeroRoundTrips) {
  EXPECT_EQ(FloatToHalfBits(0.0f), 0x0000u);
  EXPECT_EQ(FloatToHalfBits(-0.0f), 0x8000u);
  EXPECT_EQ(HalfBitsToFloat(0x0000u), 0.0f);
  EXPECT_TRUE(std::signbit(HalfBitsToFloat(0x8000u)));
}

TEST(HalfTest, OneRoundTrips) {
  EXPECT_EQ(FloatToHalfBits(1.0f), 0x3C00u);
  EXPECT_EQ(HalfBitsToFloat(0x3C00u), 1.0f);
}

TEST(HalfTest, KnownConstants) {
  EXPECT_EQ(FloatToHalfBits(2.0f), 0x4000u);
  EXPECT_EQ(FloatToHalfBits(-2.0f), 0xC000u);
  EXPECT_EQ(FloatToHalfBits(65504.0f), 0x7BFFu);  // largest finite half
  EXPECT_EQ(HalfBitsToFloat(0x7BFFu), 65504.0f);
  EXPECT_EQ(FloatToHalfBits(0.5f), 0x3800u);
  // Smallest positive normal half: 2^-14.
  EXPECT_EQ(HalfBitsToFloat(0x0400u), std::ldexp(1.0f, -14));
  // Smallest positive subnormal half: 2^-24.
  EXPECT_EQ(HalfBitsToFloat(0x0001u), std::ldexp(1.0f, -24));
}

TEST(HalfTest, InfinityAndNan) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(FloatToHalfBits(inf), 0x7C00u);
  EXPECT_EQ(FloatToHalfBits(-inf), 0xFC00u);
  EXPECT_TRUE(std::isinf(HalfBitsToFloat(0x7C00u)));
  EXPECT_TRUE(std::isinf(HalfBitsToFloat(0xFC00u)));
  EXPECT_LT(HalfBitsToFloat(0xFC00u), 0.0f);

  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::uint16_t nan_bits = FloatToHalfBits(nan);
  EXPECT_TRUE(std::isnan(HalfBitsToFloat(nan_bits)));
}

TEST(HalfTest, OverflowRoundsToInfinity) {
  EXPECT_EQ(FloatToHalfBits(65520.0f), 0x7C00u);  // first value past 65504+
  EXPECT_EQ(FloatToHalfBits(1e10f), 0x7C00u);
  EXPECT_EQ(FloatToHalfBits(-1e10f), 0xFC00u);
}

TEST(HalfTest, TinyValuesRoundToZero) {
  EXPECT_EQ(FloatToHalfBits(std::ldexp(1.0f, -26)), 0x0000u);
  EXPECT_EQ(FloatToHalfBits(-std::ldexp(1.0f, -26)), 0x8000u);
}

TEST(HalfTest, IntegersUpTo2048AreExact) {
  for (int i = 0; i <= 2048; ++i) {
    const auto f = static_cast<float>(i);
    EXPECT_EQ(QuantizeToHalf(f), f) << "integer " << i;
    EXPECT_EQ(QuantizeToHalf(-f), -f) << "integer -" << i;
  }
}

TEST(HalfTest, EveryHalfBitPatternRoundTrips) {
  // half -> float -> half must be the identity for all 65536 patterns
  // (modulo NaN payload normalization).
  for (std::uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const float f = HalfBitsToFloat(h);
    if (std::isnan(f)) {
      EXPECT_TRUE(std::isnan(HalfBitsToFloat(FloatToHalfBits(f))));
      continue;
    }
    EXPECT_EQ(FloatToHalfBits(f), h) << "bits 0x" << std::hex << bits;
  }
}

TEST(HalfTest, QuantizationIsMonotonic) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<float> dist(-60000.0f, 60000.0f);
  for (int trial = 0; trial < 10000; ++trial) {
    float a = dist(rng);
    float b = dist(rng);
    if (a > b) std::swap(a, b);
    EXPECT_LE(QuantizeToHalf(a), QuantizeToHalf(b)) << a << " vs " << b;
  }
}

TEST(HalfTest, RelativeErrorWithinHalfPrecision) {
  std::mt19937 rng(12);
  std::uniform_real_distribution<float> dist(1.0f, 60000.0f);
  for (int trial = 0; trial < 10000; ++trial) {
    const float v = dist(rng);
    const float q = QuantizeToHalf(v);
    EXPECT_LE(std::abs(q - v) / v, 1.0f / 2048.0f) << v;  // 2^-11
  }
}

TEST(HalfTest, RoundToNearestEven) {
  // 2049 is exactly between representable 2048 and 2050 -> rounds to 2048.
  EXPECT_EQ(QuantizeToHalf(2049.0f), 2048.0f);
  // 2051 is exactly between 2050 and 2052 -> rounds to 2052.
  EXPECT_EQ(QuantizeToHalf(2051.0f), 2052.0f);
}

// Bitwise equality, so -0.0 vs 0.0 and NaN-ness are observable.
std::uint32_t Bits(float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

TEST(HalfTest, BulkQuantizeMatchesScalarOnSpecialValues) {
  // The bulk path (QuantizeToHalfN) backs the device's uploads and
  // cross-precision copies; it must agree with the scalar conversion
  // bit-for-bit on every special class: NaN, +/-inf, values overflowing to
  // infinity, float subnormals (round to zero), half-subnormal magnitudes,
  // and signed zeros.
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> src = {
      std::numeric_limits<float>::quiet_NaN(),
      inf,
      -inf,
      1e10f,                            // overflows to +inf
      -65520.0f,                        // rounds past -65504 to -inf
      std::numeric_limits<float>::denorm_min(),  // float denormal -> 0
      -std::numeric_limits<float>::denorm_min(),
      std::ldexp(1.0f, -24),            // smallest half subnormal (exact)
      std::ldexp(1.0f, -14),            // smallest normal half
      std::ldexp(1.0f, -20) * 3.0f,     // mid-range half subnormal
      0.0f,
      -0.0f,
      1.0f / 3.0f,
  };

  std::vector<float> bulk(src.size());
  QuantizeToHalfN(src.data(), bulk.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(Bits(bulk[i]), Bits(QuantizeToHalf(src[i]))) << "i=" << i;
  }

  // NaN stays NaN, infinities and signed zeros keep their signs.
  EXPECT_TRUE(std::isnan(bulk[0]));
  EXPECT_EQ(bulk[1], inf);
  EXPECT_EQ(bulk[2], -inf);
  EXPECT_EQ(bulk[3], inf);
  EXPECT_EQ(bulk[4], -inf);
  EXPECT_EQ(Bits(bulk[5]), Bits(0.0f));
  EXPECT_EQ(Bits(bulk[6]), Bits(-0.0f));
  EXPECT_EQ(bulk[7], std::ldexp(1.0f, -24));
  EXPECT_EQ(Bits(bulk[11]), Bits(-0.0f));

  // Aliased (in-place) bulk quantization, the copy-path usage.
  std::vector<float> in_place = src;
  QuantizeToHalfN(in_place.data(), in_place.data(), in_place.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(Bits(in_place[i]), Bits(bulk[i])) << "i=" << i;
  }

  // Idempotence: re-quantizing an already-quantized buffer is the identity
  // (the invariant the engine relies on to skip re-quantization for
  // binary16 source operands).
  std::vector<float> twice = bulk;
  QuantizeToHalfN(twice.data(), twice.data(), twice.size());
  for (std::size_t i = 0; i < bulk.size(); ++i) {
    EXPECT_EQ(Bits(twice[i]), Bits(bulk[i])) << "i=" << i;
  }
}

}  // namespace
}  // namespace streamgpu::gpu
