// Tests for the core-level hierarchical heavy-hitter estimator
// (core/hhh_estimator.h): backend plumbing + end-to-end guarantees.

#include "core/hhh_estimator.h"

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/exact.h"

namespace streamgpu::core {
namespace {

std::vector<float> HotSubtreeStream(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> background(0, 255);
  std::uniform_int_distribution<int> hot(64, 71);  // the floor(v/8)=8 subtree
  std::vector<float> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<float>(i % 4 == 0 ? hot(rng) : background(rng)));
  }
  return out;
}

TEST(HhhEstimatorTest, GpuAndCpuBackendsAgree) {
  const auto stream = HotSubtreeStream(40000, 5);
  std::vector<std::vector<sketch::HhhResult>> results;
  for (Backend b : {Backend::kGpuPbsn, Backend::kCpuQuicksort}) {
    Options opt;
    opt.epsilon = 0.005;
    opt.backend = b;
    HhhEstimator hhh(opt, /*levels=*/4);
    hhh.ObserveBatch(stream);
    hhh.Flush();
    results.push_back(hhh.Query(0.15));
  }
  ASSERT_EQ(results[0].size(), results[1].size());
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_EQ(results[0][i].level, results[1][i].level);
    EXPECT_EQ(results[0][i].prefix, results[1][i].prefix);
    EXPECT_EQ(results[0][i].count, results[1][i].count);
  }
}

TEST(HhhEstimatorTest, FindsAggregateOnlySubtree) {
  const auto stream = HotSubtreeStream(60000, 6);
  Options opt;
  opt.epsilon = 0.005;
  opt.backend = Backend::kGpuPbsn;
  HhhEstimator hhh(opt, /*levels=*/4);
  hhh.ObserveBatch(stream);
  hhh.Flush();
  EXPECT_EQ(hhh.processed_length(), 60000u);

  // The hot subtree holds ~25% + background share; no single leaf exceeds
  // ~4%. At 15% support only the aggregate is reported.
  const auto results = hhh.Query(0.15);
  const bool subtree_found =
      std::any_of(results.begin(), results.end(), [](const sketch::HhhResult& r) {
        return r.level == 3 && r.prefix == 8.0f;
      });
  EXPECT_TRUE(subtree_found);
  for (const auto& r : results) EXPECT_NE(r.level, 0) << "no leaf is that heavy";

  // Leaf-level counts remain within the epsilon budget.
  const auto exact = sketch::ExactCounts(stream);
  const auto bound = static_cast<std::uint64_t>(0.005 * 60000) + 1;
  for (const auto& [value, truth] : exact) {
    const std::uint64_t est = hhh.EstimateCount(value, 0);
    EXPECT_LE(est, truth);
    EXPECT_GE(est + bound, truth);
  }
}

TEST(HhhEstimatorTest, CostsReflectAllLevels) {
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kGpuPbsn;
  HhhEstimator hhh(opt, /*levels=*/3);
  hhh.ObserveBatch(HotSubtreeStream(5000, 7));
  hhh.Flush();
  EXPECT_GT(hhh.costs().sort.simulated_seconds, 0.0);
  // Histogram elements counted once per level per element.
  EXPECT_EQ(hhh.costs().histogram_elements, 5000u * 4u);
  EXPECT_GT(hhh.SimulatedSeconds(), hhh.costs().sort.simulated_seconds);
}

TEST(HhhEstimatorTest, RejectsSlidingWindows) {
  Options opt;
  opt.epsilon = 0.01;
  opt.sliding_window = 1000;
  EXPECT_DEATH(HhhEstimator(opt, 3), "whole-history");
}

}  // namespace
}  // namespace streamgpu::core
