// Tests for hierarchical heavy hitters (sketch/hierarchical.h).

#include "sketch/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/exact.h"

namespace streamgpu::sketch {
namespace {

void Feed(HierarchicalHeavyHitters* hhh, std::span<const float> stream) {
  const std::uint64_t w = hhh->window_width();
  for (std::size_t off = 0; off < stream.size(); off += w) {
    const std::size_t len = std::min<std::size_t>(w, stream.size() - off);
    std::vector<float> window(stream.begin() + off, stream.begin() + off + len);
    std::sort(window.begin(), window.end());
    hhh->AddSortedWindow(window);
  }
}

TEST(HierarchicalTest, GeneralizeFollowsBranching) {
  HierarchicalHeavyHitters hhh(0.01, 4, 2.0);
  EXPECT_EQ(hhh.Generalize(13.0f, 0), 13.0f);
  EXPECT_EQ(hhh.Generalize(13.0f, 1), 6.0f);
  EXPECT_EQ(hhh.Generalize(13.0f, 2), 3.0f);
  EXPECT_EQ(hhh.Generalize(13.0f, 3), 1.0f);
  EXPECT_EQ(hhh.Generalize(13.0f, 4), 0.0f);

  HierarchicalHeavyHitters base16(0.01, 2, 16.0);
  EXPECT_EQ(base16.Generalize(255.0f, 1), 15.0f);
  EXPECT_EQ(base16.Generalize(255.0f, 2), 0.0f);
}

TEST(HierarchicalTest, LeafLevelMatchesFlatSummary) {
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> d(0, 63);
  std::vector<float> stream(20000);
  for (float& v : stream) v = static_cast<float>(d(rng));

  HierarchicalHeavyHitters hhh(0.005, 3);
  Feed(&hhh, stream);
  const auto exact = ExactCounts(stream);
  for (const auto& [value, truth] : exact) {
    const std::uint64_t est = hhh.EstimateCount(value, 0);
    EXPECT_LE(est, truth);
    EXPECT_GE(est + static_cast<std::uint64_t>(0.005 * 20000) + 1, truth);
  }
}

TEST(HierarchicalTest, AggregateCountsRollUp) {
  // Values 8..15 uniformly: no single leaf is heavy, but their level-3
  // ancestor floor(v/8) = 1 carries everything.
  std::mt19937 rng(4);
  std::uniform_int_distribution<int> d(8, 15);
  std::vector<float> stream(16000);
  for (float& v : stream) v = static_cast<float>(d(rng));

  HierarchicalHeavyHitters hhh(0.01, 3);
  Feed(&hhh, stream);
  EXPECT_GE(hhh.EstimateCount(1.0f, 3), 15000u);

  // At 40% support the first qualifying ancestors are floor(v/4) = 2 and 3
  // (~50% each); with both reported, the level-3 root carries no additional
  // discounted mass and must not be re-reported.
  const auto results = hhh.Query(0.4);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_EQ(r.level, 2);
    EXPECT_TRUE(r.prefix == 2.0f || r.prefix == 3.0f);
    EXPECT_GE(r.discounted_count, static_cast<std::uint64_t>(0.4 * 16000));
  }
}

TEST(HierarchicalTest, DiscountingSuppressesAncestorsOfReportedLeaves) {
  // One dominant leaf: its ancestors hold no *additional* mass and must not
  // be re-reported at high support.
  std::vector<float> stream;
  stream.insert(stream.end(), 9000, 12.0f);
  std::mt19937 rng(5);
  std::uniform_int_distribution<int> d(100, 163);
  for (int i = 0; i < 1000; ++i) stream.push_back(static_cast<float>(d(rng)));
  std::shuffle(stream.begin(), stream.end(), rng);

  HierarchicalHeavyHitters hhh(0.01, 3);
  Feed(&hhh, stream);
  const auto results = hhh.Query(0.5);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].level, 0);
  EXPECT_EQ(results[0].prefix, 12.0f);
}

TEST(HierarchicalTest, NoFalseNegativesAcrossLevels) {
  std::mt19937 rng(6);
  std::uniform_int_distribution<int> d(0, 255);
  std::vector<float> stream(40000);
  for (float& v : stream) v = static_cast<float>(d(rng));
  // Plant a heavy subtree: values 64..71 get an extra 12000 occurrences.
  std::uniform_int_distribution<int> hot(64, 71);
  for (int i = 0; i < 12000; ++i) stream.push_back(static_cast<float>(hot(rng)));
  std::shuffle(stream.begin(), stream.end(), rng);

  const double support = 0.15;
  HierarchicalHeavyHitters hhh(0.01, 4);
  Feed(&hhh, stream);
  const auto results = hhh.Query(support);
  // floor(v/8) = 8 aggregates the hot subtree (~12000 + background ~1600 of
  // 52000 total ~= 26%): it must be reported at some level.
  const bool found = std::any_of(results.begin(), results.end(), [](const HhhResult& r) {
    return r.level == 3 && r.prefix == 8.0f;
  });
  EXPECT_TRUE(found);
}

TEST(HierarchicalTest, SpaceIsSumOfPerLevelSummaries) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> d(0, 10000);
  std::vector<float> stream(50000);
  for (float& v : stream) v = static_cast<float>(d(rng));
  HierarchicalHeavyHitters hhh(0.01, 5);
  Feed(&hhh, stream);
  // Each level is a lossy-counting summary with O((1/eps) log(eps N)) space.
  EXPECT_LE(hhh.summary_size(), 6u * 100u * 16u);
  EXPECT_EQ(hhh.stream_length(), 50000u);
}

}  // namespace
}  // namespace streamgpu::sketch
