// Tests for window histogram computation and rank sampling
// (sketch/histogram.h) and the exact offline references (sketch/exact.h).

#include "sketch/histogram.h"

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/exact.h"

namespace streamgpu::sketch {
namespace {

TEST(HistogramTest, EmptyWindow) {
  EXPECT_TRUE(BuildHistogram({}).empty());
}

TEST(HistogramTest, SingleValue) {
  const std::vector<float> w{5.0f};
  const auto h = BuildHistogram(w);
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h[0], (HistogramEntry{5.0f, 1}));
}

TEST(HistogramTest, CountsRuns) {
  const std::vector<float> w{1, 1, 1, 2, 3, 3};
  const auto h = BuildHistogram(w);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0], (HistogramEntry{1, 3}));
  EXPECT_EQ(h[1], (HistogramEntry{2, 1}));
  EXPECT_EQ(h[2], (HistogramEntry{3, 2}));
}

TEST(HistogramTest, AllEqual) {
  const std::vector<float> w(100, 7.0f);
  const auto h = BuildHistogram(w);
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h[0].count, 100u);
}

TEST(HistogramTest, CountsSumToWindowSize) {
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> d(0, 50);
  std::vector<float> w(1000);
  for (float& v : w) v = static_cast<float>(d(rng));
  std::sort(w.begin(), w.end());
  const auto h = BuildHistogram(w);
  std::uint64_t total = 0;
  for (const auto& e : h) total += e.count;
  EXPECT_EQ(total, w.size());
  EXPECT_TRUE(std::is_sorted(h.begin(), h.end(), [](const auto& a, const auto& b) {
    return a.value < b.value;
  }));
}

TEST(HistogramTest, MatchesExactCounts) {
  std::mt19937 rng(4);
  std::uniform_int_distribution<int> d(0, 20);
  std::vector<float> w(500);
  for (float& v : w) v = static_cast<float>(d(rng));
  const auto exact = ExactCounts(w);
  std::sort(w.begin(), w.end());
  for (const auto& e : BuildHistogram(w)) {
    EXPECT_EQ(e.count, exact.at(e.value)) << e.value;
  }
}

TEST(SampleSortedTest, StepOneKeepsEverything) {
  const std::vector<float> w{1, 2, 3, 4};
  const auto s = SampleSortedByRank(w, 1);
  ASSERT_EQ(s.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s[i].first, w[i]);
    EXPECT_EQ(s[i].second, i);
  }
}

TEST(SampleSortedTest, IncludesFirstAndLast) {
  std::vector<float> w(100);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = static_cast<float>(i);
  for (std::uint64_t step : {2u, 3u, 7u, 50u, 99u, 1000u}) {
    const auto s = SampleSortedByRank(w, step);
    ASSERT_FALSE(s.empty());
    EXPECT_EQ(s.front().second, 0u) << step;
    EXPECT_EQ(s.back().second, 99u) << step;
    // Gaps between consecutive sampled ranks never exceed the step.
    for (std::size_t i = 1; i < s.size(); ++i) {
      EXPECT_LE(s[i].second - s[i - 1].second, step);
    }
  }
}

TEST(ExactTest, QuantileDefinition) {
  const std::vector<float> v{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_EQ(ExactQuantile(v, 0.5), 50.0f);   // rank ceil(5) = 5
  EXPECT_EQ(ExactQuantile(v, 0.05), 10.0f);  // rank ceil(0.5) = 1
  EXPECT_EQ(ExactQuantile(v, 1.0), 100.0f);
  EXPECT_EQ(ExactQuantile(v, 0.91), 100.0f);
}

TEST(ExactTest, RankRangeWithDuplicates) {
  const std::vector<float> v{1, 2, 2, 2, 3};
  const auto [lo, hi] = ExactRankRange(v, 2.0f);
  EXPECT_EQ(lo, 1u);  // one element strictly below
  EXPECT_EQ(hi, 3u);  // zero-based rank of the last 2
}

TEST(ExactTest, HeavyHittersThresholdIsStrict) {
  std::vector<float> v;
  v.insert(v.end(), 50, 1.0f);
  v.insert(v.end(), 30, 2.0f);
  v.insert(v.end(), 20, 3.0f);
  const auto hh = ExactHeavyHitters(v, 0.25);
  ASSERT_EQ(hh.size(), 2u);
  EXPECT_EQ(hh[0].first, 1.0f);
  EXPECT_EQ(hh[1].first, 2.0f);
  // 20/100 == 0.2 is not > 0.2:
  EXPECT_TRUE(ExactHeavyHitters(v, 0.20).size() == 2u);
}

}  // namespace
}  // namespace streamgpu::sketch
