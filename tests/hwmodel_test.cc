// Tests for the hardware timing models (hwmodel/): sanity, monotonicity,
// and consistency with the paper's published device parameters.

#include <gtest/gtest.h>

#include "gpu/stats.h"
#include "hwmodel/cpu_model.h"
#include "hwmodel/gpu_model.h"
#include "hwmodel/hardware_profiles.h"

namespace streamgpu::hwmodel {
namespace {

TEST(GpuModelTest, ZeroWorkZeroTime) {
  GpuModel model(kGeForce6800Ultra);
  const GpuTimeBreakdown b = model.Simulate(gpu::GpuStats{});
  EXPECT_EQ(b.TotalSeconds(), 0.0);
}

TEST(GpuModelTest, BlendThroughputMatchesPipeCount) {
  // 16 pipes at 400 MHz, 6.5 cycles per blended fragment: 16e6 fragments
  // should take 16e6 * 6.5 / 16 / 400e6 = 16.25 ms of compute.
  GpuModel model(kGeForce6800Ultra);
  gpu::GpuStats stats;
  stats.fragments_shaded = 16'000'000;
  stats.blend_fragments = 16'000'000;
  const GpuTimeBreakdown b = model.Simulate(stats);
  EXPECT_NEAR(b.compute_s, 0.01625, 1e-6);
}

TEST(GpuModelTest, MemoryTimeFromBandwidth) {
  GpuModel model(kGeForce6800Ultra);
  gpu::GpuStats stats;
  stats.bytes_vram = static_cast<std::uint64_t>(35.2e9);  // one second's worth
  const GpuTimeBreakdown b = model.Simulate(stats);
  EXPECT_NEAR(b.memory_s, 1.0, 1e-9);
}

TEST(GpuModelTest, TransferTimeFromBusBandwidth) {
  // §4.1: ~800 MB/s effective AGP bandwidth.
  GpuModel model(kGeForce6800Ultra);
  gpu::GpuStats stats;
  stats.bytes_uploaded = 400'000'000;
  stats.bytes_readback = 400'000'000;
  const GpuTimeBreakdown b = model.Simulate(stats);
  EXPECT_NEAR(b.transfer_s, 1.0, 1e-9);
}

TEST(GpuModelTest, ComputeAndMemoryOverlap) {
  GpuModel model(kGeForce6800Ultra);
  gpu::GpuStats stats;
  stats.fragments_shaded = 16'000'000;
  stats.blend_fragments = 16'000'000;
  stats.bytes_vram = static_cast<std::uint64_t>(35.2e9);
  const GpuTimeBreakdown b = model.Simulate(stats);
  EXPECT_NEAR(b.DeviceSeconds(), 1.0, 1e-6);  // max, not sum
}

TEST(GpuModelTest, ProgramInstructionsChargedPerCycle) {
  // 53-instruction fragment programs: 16 pipes retire 16 instructions per
  // cycle in aggregate.
  GpuModel model(kGeForce6800Ultra);
  gpu::GpuStats stats;
  stats.fragments_shaded = 1'000'000;
  stats.program_fragments = 1'000'000;
  stats.program_instructions = 53'000'000;
  const GpuTimeBreakdown b = model.Simulate(stats);
  EXPECT_NEAR(b.compute_s, 53e6 / 16.0 / 400e6, 1e-9);
}

TEST(GpuModelTest, BitonicCostlierThanBlendPerComparator) {
  // The crux of §4.5: >= 53 instructions vs 6-7 blend cycles per comparator.
  GpuModel model(kGeForce6800Ultra);
  gpu::GpuStats blend;
  blend.fragments_shaded = 1'000'000;
  blend.blend_fragments = 1'000'000;
  gpu::GpuStats program;
  program.fragments_shaded = 1'000'000;
  program.program_fragments = 1'000'000;
  program.program_instructions = 53'000'000;
  EXPECT_GT(model.Simulate(program).compute_s, 7.0 * model.Simulate(blend).compute_s);
}

TEST(GpuModelTest, SetupScalesWithDrawsAndBinds) {
  GpuModel model(kGeForce6800Ultra);
  gpu::GpuStats stats;
  stats.draw_calls = 1000;
  stats.framebuffer_binds = 2;
  stats.fb_to_texture_copies = 100;
  const GpuTimeBreakdown b = model.Simulate(stats);
  EXPECT_NEAR(b.setup_s,
              1000 * kGeForce6800Ultra.per_draw_overhead_s +
                  2 * kGeForce6800Ultra.per_bind_overhead_s +
                  100 * kGeForce6800Ultra.per_pass_overhead_s,
              1e-12);
}

TEST(CpuModelTest, QuicksortScalesSuperlinearly) {
  CpuModel model(kPentium4_3400);
  const double t1 = model.QuicksortSeconds(1 << 16, 4);
  const double t2 = model.QuicksortSeconds(1 << 20, 4);
  EXPECT_GT(t2, 16.0 * t1);  // more than linear in n
  EXPECT_LT(t2, 64.0 * t1);  // far less than quadratic
}

TEST(CpuModelTest, CacheMissesJumpPastL2) {
  CpuModel model(kPentium4_3400);
  // 256 KB fits in the 1 MB L2: compulsory misses only.
  const double in_cache = model.QuicksortCacheMisses(65536, 4);
  EXPECT_NEAR(in_cache, 65536.0 * 4 / 64, 1.0);
  // 32 MB: every partitioning level above cache re-streams the array
  // (§3.2: "For larger sequences quicksort incurs a substantially higher
  // number of misses").
  const double out_of_cache = model.QuicksortCacheMisses(8 << 20, 4);
  EXPECT_GT(out_of_cache, 8.0 * in_cache * 128 / 16);
}

TEST(CpuModelTest, EightMillionFloatsAboutOneSecond) {
  // Calibration anchor: Fig. 3 shows the optimized P4 quicksort sorting 8M
  // values in roughly a second.
  CpuModel model(kPentium4_3400);
  const double t = model.QuicksortSeconds(8 << 20, 4);
  EXPECT_GT(t, 0.5);
  EXPECT_LT(t, 2.5);
}

TEST(CpuModelTest, MsvcProfileIsSlower) {
  CpuModel intel(kPentium4_3400);
  CpuModel msvc(kPentium4_3400Msvc);
  const double ti = intel.QuicksortSeconds(1 << 20, 4);
  const double tm = msvc.QuicksortSeconds(1 << 20, 4);
  EXPECT_GT(tm, 1.5 * ti);
  EXPECT_LT(tm, 4.0 * ti);
}

TEST(CpuModelTest, LinearPassInCacheHasNoMissTerm) {
  CpuModel model(kPentium4_3400);
  const double small = model.LinearPassSeconds(1000, 4, 3.0);
  EXPECT_NEAR(small, 1000 * 3.0 / 3.4e9, 1e-12);
  const double big = model.LinearPassSeconds(10'000'000, 4, 3.0);
  EXPECT_GT(big, 10'000'000 * 3.0 / 3.4e9);  // adds streaming misses
}

TEST(CpuModelTest, MergeSecondsGrowWithWays) {
  CpuModel model(kPentium4_3400);
  EXPECT_GT(model.MergeSeconds(1'000'000, 8, 4), model.MergeSeconds(1'000'000, 2, 4));
}

}  // namespace
}  // namespace streamgpu::hwmodel
