// Cross-module integration tests: full pipelines against exact offline
// computation, GPU-vs-CPU backend equivalence on every stream family, and
// the performance-shape claims the paper's evaluation makes.

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/frequency_estimator.h"
#include "gpu/half.h"
#include "core/quantile_estimator.h"
#include "sketch/exact.h"
#include "stream/generator.h"

namespace streamgpu {
namespace {

using core::Backend;
using core::FrequencyEstimator;
using core::Options;
using core::QuantileEstimator;

struct PipelineCase {
  stream::Distribution distribution;
  double epsilon;
  std::size_t n;
};

class PipelineProperty : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineProperty, GpuFrequencyGuaranteesHold) {
  const PipelineCase& p = GetParam();
  stream::StreamGenerator gen({.distribution = p.distribution, .seed = 1001});
  auto stream = gen.Take(p.n);

  Options opt;
  opt.epsilon = p.epsilon;
  opt.backend = Backend::kGpuPbsn;
  FrequencyEstimator fe(opt);
  fe.ObserveBatch(stream);
  fe.Flush();

  // The fp16 pipeline's value universe is the quantized stream.
  for (float& v : stream) v = gpu::QuantizeToHalf(v);
  const auto exact = sketch::ExactCounts(stream);
  const auto bound = static_cast<std::uint64_t>(
      std::ceil(p.epsilon * static_cast<double>(p.n)));
  for (const auto& [value, truth] : exact) {
    const std::uint64_t est = fe.EstimateCount(value);
    ASSERT_LE(est, truth) << value;
    ASSERT_GE(est + bound, truth) << value;
  }
}

TEST_P(PipelineProperty, GpuQuantileGuaranteesHold) {
  const PipelineCase& p = GetParam();
  stream::StreamGenerator gen({.distribution = p.distribution, .seed = 1002});
  const auto stream = gen.Take(p.n);

  Options opt;
  opt.epsilon = p.epsilon;
  opt.backend = Backend::kGpuPbsn;
  QuantileEstimator qe(opt);
  qe.ObserveBatch(stream);
  qe.Flush();

  // The fp16 pipeline's value universe is the quantized stream.
  std::vector<float> sorted(stream);
  for (float& v : sorted) v = gpu::QuantizeToHalf(v);
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(p.n);
  for (double phi : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const float q = qe.Quantile(phi).value;
    const auto [lo, hi] = sketch::ExactRankRange(sorted, q);
    const double target = std::ceil(phi * n);
    const double allowed = p.epsilon * n + 1;
    ASSERT_LE(static_cast<double>(lo) + 1, target + allowed) << phi;
    ASSERT_GE(static_cast<double>(hi) + 1, target - allowed) << phi;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, PipelineProperty,
    ::testing::Values(
        PipelineCase{stream::Distribution::kUniform, 0.005, 50000},
        PipelineCase{stream::Distribution::kZipf, 0.005, 50000},
        PipelineCase{stream::Distribution::kNetworkFlows, 0.01, 40000},
        PipelineCase{stream::Distribution::kFinanceTicks, 0.01, 40000},
        PipelineCase{stream::Distribution::kSorted, 0.01, 30000},
        PipelineCase{stream::Distribution::kNearlySorted, 0.01, 30000}),
    [](const ::testing::TestParamInfo<PipelineCase>& info) {
      std::string name = stream::DistributionName(info.param.distribution);
      std::replace(name.begin(), name.end(), '-', '_');
      return name + "_n" + std::to_string(info.param.n);
    });

TEST(BackendEquivalenceTest, GpuAndCpuQuantilesAgreeExactly) {
  // On binary16-exact data, both backends compute the same sorted windows
  // and therefore the same summaries and answers.
  stream::StreamGenerator gen(
      {.distribution = stream::Distribution::kZipf, .seed = 2001, .domain_size = 1500});
  const auto stream = gen.Take(60000);
  std::vector<float> answers;
  for (Backend b : {Backend::kGpuPbsn, Backend::kCpuQuicksort, Backend::kCpuStdSort}) {
    Options opt;
    opt.epsilon = 0.002;
    opt.backend = b;
    QuantileEstimator qe(opt);
    qe.ObserveBatch(stream);
    qe.Flush();
    for (double phi : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      answers.push_back(qe.Quantile(phi).value);
    }
  }
  for (std::size_t i = 5; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i], answers[i % 5]) << i;
  }
}

TEST(PerformanceShapeTest, GpuWinsAtLargeWindowsLosesAtSmall) {
  // Fig. 5's qualitative shape: "our GPU-based algorithm performs better
  // than the optimized CPU implementation for large sized windows" and
  // "the GPU incurs overhead for small window sizes."
  const auto run = [](double epsilon, Backend backend) {
    stream::StreamGenerator gen(
        {.distribution = stream::Distribution::kUniform, .seed = 3001});
    Options opt;
    opt.epsilon = epsilon;
    opt.backend = backend;
    FrequencyEstimator fe(opt);
    // Exactly one four-window batch at the given epsilon.
    const std::size_t n = static_cast<std::size_t>(4.0 / epsilon);
    fe.ObserveBatch(gen.Take(n));
    fe.Flush();
    return fe.SimulatedSeconds();
  };

  // Small windows (epsilon = 1/500): CPU ahead.
  EXPECT_LT(run(1.0 / 500, Backend::kCpuQuicksort), run(1.0 / 500, Backend::kGpuPbsn));
  // Large windows (epsilon = 1/2^19, ~0.5M-element windows whose working set
  // falls out of the P4's L2): GPU ahead.
  EXPECT_GT(run(1.0 / 524288, Backend::kCpuQuicksort),
            run(1.0 / 524288, Backend::kGpuPbsn));
}

TEST(PerformanceShapeTest, SortingDominatesSummaryTime) {
  // §5.1: "80-90% of the overall running time is spent in sorting" (70-95%
  // in §3.2). Check sorting is the dominant simulated cost on the CPU path.
  stream::StreamGenerator gen(
      {.distribution = stream::Distribution::kUniform, .seed = 3002});
  Options opt;
  opt.epsilon = 1.0 / 8192;
  opt.backend = Backend::kCpuQuicksort;
  FrequencyEstimator fe(opt);
  fe.ObserveBatch(gen.Take(80000));
  fe.Flush();
  const double total = fe.SimulatedSeconds();
  const double sort = fe.costs().sort.simulated_seconds;
  EXPECT_GT(sort / total, 0.6);
}

TEST(PerformanceShapeTest, TransferTimeIsSmallFractionOfGpuSort) {
  // Fig. 4: "the data transfer times are not significant in comparison to
  // the time spent in performing comparisons and sorting."
  stream::StreamGenerator gen(
      {.distribution = stream::Distribution::kUniform, .seed = 3003});
  Options opt;
  opt.epsilon = 1.0 / 65536;
  opt.backend = Backend::kGpuPbsn;
  FrequencyEstimator fe(opt);
  fe.ObserveBatch(gen.Take(1 << 19));
  fe.Flush();
  const auto& sort = fe.costs().sort;
  EXPECT_LT(sort.sim_transfer_seconds, 0.25 * sort.simulated_seconds);
}

TEST(FailureInjectionTest, EstimatorsSurviveExtremeValues) {
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kGpuPbsn;
  opt.gpu_format = gpu::Format::kFloat32;
  FrequencyEstimator fe(opt);
  QuantileEstimator qe(opt);
  std::vector<float> hostile;
  for (int i = 0; i < 500; ++i) {
    hostile.push_back(std::numeric_limits<float>::infinity());
    hostile.push_back(-std::numeric_limits<float>::infinity());
    hostile.push_back(0.0f);
    hostile.push_back(-0.0f);
    hostile.push_back(std::numeric_limits<float>::denorm_min());
    hostile.push_back(std::numeric_limits<float>::max());
  }
  fe.ObserveBatch(hostile);
  qe.ObserveBatch(hostile);
  fe.Flush();
  qe.Flush();
  EXPECT_EQ(fe.processed_length(), hostile.size());
  EXPECT_GE(fe.EstimateCount(0.0f), 500u);
  const float median = qe.Quantile(0.5).value;
  EXPECT_FALSE(std::isnan(median));
}

TEST(FailureInjectionTest, QuantizedPipelineIsSelfConsistent) {
  // Values that are NOT representable in binary16: the fp16 pipeline
  // quantizes them, and its answers must be consistent with the quantized
  // stream's ground truth.
  std::vector<float> stream;
  std::mt19937 rng(4001);
  std::uniform_real_distribution<float> d(1000.0f, 2000.0f);  // many non-exact
  for (int i = 0; i < 20000; ++i) stream.push_back(d(rng));

  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kGpuPbsn;
  opt.gpu_format = gpu::Format::kFloat16;
  QuantileEstimator qe(opt);
  qe.ObserveBatch(stream);
  qe.Flush();

  std::vector<float> quantized(stream);
  for (float& v : quantized) v = gpu::QuantizeToHalf(v);
  std::sort(quantized.begin(), quantized.end());
  const double n = static_cast<double>(stream.size());
  const float q = qe.Quantile(0.5).value;
  const auto [lo, hi] = sketch::ExactRankRange(quantized, q);
  EXPECT_LE(static_cast<double>(lo) + 1, 0.5 * n + 0.01 * n + 1);
  EXPECT_GE(static_cast<double>(hi) + 1, 0.5 * n - 0.01 * n - 1);
}

}  // namespace
}  // namespace streamgpu
