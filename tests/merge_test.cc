// Tests for the CPU-side run merging (sort/merge.h).

#include "sort/merge.h"

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace streamgpu::sort {
namespace {

std::vector<float> SortedRandom(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 100.0f);
  std::vector<float> v(n);
  for (float& x : v) x = dist(rng);
  std::sort(v.begin(), v.end());
  return v;
}

TEST(MergeTest, TwoWayBasic) {
  const std::vector<float> a{1, 3, 5};
  const std::vector<float> b{2, 4, 6};
  std::vector<float> out(6);
  TwoWayMerge(a, b, out);
  EXPECT_EQ(out, (std::vector<float>{1, 2, 3, 4, 5, 6}));
}

TEST(MergeTest, TwoWayEmptySides) {
  const std::vector<float> a{1, 2};
  const std::vector<float> empty;
  std::vector<float> out(2);
  TwoWayMerge(a, empty, out);
  EXPECT_EQ(out, a);
  TwoWayMerge(empty, a, out);
  EXPECT_EQ(out, a);
}

TEST(MergeTest, TwoWayIsStableTowardFirstRun) {
  // Ties take from `a` first (b[j] < a[i] strictly advances b).
  const std::vector<float> a{5, 5};
  const std::vector<float> b{5};
  std::vector<float> out(3);
  TwoWayMerge(a, b, out);
  EXPECT_EQ(out, (std::vector<float>{5, 5, 5}));
}

TEST(MergeTest, TwoWayComparisonsLinear) {
  const auto a = SortedRandom(1000, 1);
  const auto b = SortedRandom(1000, 2);
  std::vector<float> out(2000);
  const std::uint64_t comparisons = TwoWayMerge(a, b, out);
  EXPECT_LE(comparisons, 2000u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(MergeTest, FourWayMatchesStdSort) {
  std::array<std::vector<float>, 4> runs;
  std::vector<float> all;
  for (int i = 0; i < 4; ++i) {
    runs[i] = SortedRandom(100 + 37 * i, 10 + i);
    all.insert(all.end(), runs[i].begin(), runs[i].end());
  }
  std::vector<float> out(all.size());
  const std::array<std::span<const float>, 4> views{runs[0], runs[1], runs[2], runs[3]};
  const std::uint64_t comparisons = FourWayMerge(views, out);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(out, all);
  // "The merge routine performs O(n) comparisons" (§4.4): two levels of
  // binary merges, at most 2n comparisons.
  EXPECT_LE(comparisons, 2 * all.size());
}

TEST(MergeTest, FourWayWithEmptyRuns) {
  std::array<std::vector<float>, 4> runs;
  runs[0] = {1, 4};
  runs[2] = {2, 3};
  std::vector<float> out(4);
  const std::array<std::span<const float>, 4> views{runs[0], runs[1], runs[2], runs[3]};
  FourWayMerge(views, out);
  EXPECT_EQ(out, (std::vector<float>{1, 2, 3, 4}));
}

TEST(MergeTest, TwoWayExactComparisonCount) {
  // The count contract (shared by the seed implementation and the branchless
  // loop): exactly one comparison per emitted element while both runs are
  // non-empty; the tail copy is free.
  const std::vector<float> a{1, 2, 3, 4, 5, 6, 7};
  const std::vector<float> b{0};
  std::vector<float> out(8);
  // b[0] = 0 wins the first comparison and exhausts b; a's tail copies over
  // without further comparisons.
  EXPECT_EQ(TwoWayMerge(a, b, out), 1u);
  // Interleaved runs compare once per output until one side empties.
  const std::vector<float> c{1, 3, 5, 7};
  const std::vector<float> d{2, 4, 6, 8};
  out.resize(8);
  EXPECT_EQ(TwoWayMerge(c, d, out), 7u);  // d's last element tail-copies
}

TEST(MergeTest, TwoWayDuplicateHeavy) {
  // All-equal inputs: worst case for branch predictors, and the stability
  // rule (ties from `a`) must hold for every element.
  const std::vector<float> a(500, 3.0f);
  std::vector<float> b(500, 3.0f);
  b.push_back(4.0f);
  std::vector<float> out(1001);
  const std::uint64_t comparisons = TwoWayMerge(a, b, out);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out.back(), 4.0f);
  // Every tie takes from `a`, so a drains in 500 compared outputs and b's
  // 501 elements tail-copy for free.
  EXPECT_EQ(comparisons, 500u);
}

TEST(MergeTest, KWayMatchesStdSort) {
  std::mt19937 rng(77);
  for (int ways = 1; ways <= 9; ++ways) {
    std::vector<std::vector<float>> runs(ways);
    std::vector<float> all;
    for (int i = 0; i < ways; ++i) {
      runs[i] = SortedRandom(20 + 11 * i, 100 + i);
      all.insert(all.end(), runs[i].begin(), runs[i].end());
    }
    std::vector<std::span<const float>> views(runs.begin(), runs.end());
    std::vector<float> out(all.size());
    KWayMerge(views, out);
    std::sort(all.begin(), all.end());
    ASSERT_EQ(out, all) << "ways=" << ways;
  }
}

TEST(MergeTest, KWaySingleRunCopiesWithoutComparisons) {
  const auto run = SortedRandom(257, 5);
  const std::vector<std::span<const float>> views{run};
  std::vector<float> out(run.size());
  EXPECT_EQ(KWayMerge(views, out), 0u);
  EXPECT_EQ(out, run);
  // Degenerate inputs: no runs at all, and a single empty run.
  std::vector<float> empty_out;
  EXPECT_EQ(KWayMerge(std::vector<std::span<const float>>{}, empty_out), 0u);
  const std::vector<float> empty_run;
  EXPECT_EQ(KWayMerge(std::vector<std::span<const float>>{empty_run}, empty_out), 0u);
}

TEST(MergeTest, KWayWithEmptyRuns) {
  // Empty runs interleaved with real ones (the padded-leaf path of the loser
  // tree): they must lose every match without being counted as comparisons.
  const std::vector<float> a{1, 5, 9};
  const std::vector<float> empty;
  const std::vector<float> b{2, 6};
  const std::vector<float> c{3};
  const std::vector<std::span<const float>> views{empty, a, empty, b, c, empty};
  std::vector<float> out(6);
  KWayMerge(views, out);
  EXPECT_EQ(out, (std::vector<float>{1, 2, 3, 5, 6, 9}));

  std::vector<float> out2(6);
  KWayMergeHeadScan(views, out2);
  EXPECT_EQ(out, out2);
}

TEST(MergeTest, KWayDuplicateHeavyIsStable) {
  // Heavy duplication across runs: the loser tree breaks ties by run index,
  // which is exactly the head-scan's order — outputs must match elementwise.
  std::mt19937 rng(31);
  std::uniform_int_distribution<int> small(0, 3);
  std::vector<std::vector<float>> runs(7);
  std::size_t total = 0;
  for (auto& run : runs) {
    run.resize(200);
    for (float& v : run) v = static_cast<float>(small(rng));
    std::sort(run.begin(), run.end());
    total += run.size();
  }
  const std::vector<std::span<const float>> views(runs.begin(), runs.end());
  std::vector<float> tree_out(total);
  std::vector<float> scan_out(total);
  KWayMerge(views, tree_out);
  KWayMergeHeadScan(views, scan_out);
  EXPECT_EQ(tree_out, scan_out);
  EXPECT_TRUE(std::is_sorted(tree_out.begin(), tree_out.end()));
}

TEST(MergeTest, KWayComparisonCountInvariants) {
  // Each of the n outputs replays one leaf-to-root path: at most
  // ceil(log2 k) real comparisons, plus the tree build (< k). The head scan
  // costs (live_runs - 1) per output — strictly more for k > 2 — which is
  // the point of the loser tree.
  std::mt19937 rng(53);
  for (std::size_t ways : {2u, 3u, 5u, 8u, 16u}) {
    std::vector<std::vector<float>> runs(ways);
    std::size_t total = 0;
    for (std::size_t i = 0; i < ways; ++i) {
      runs[i] = SortedRandom(300 + 17 * i, static_cast<unsigned>(1000 + i));
      total += runs[i].size();
    }
    const std::vector<std::span<const float>> views(runs.begin(), runs.end());
    std::vector<float> out(total);
    const std::uint64_t tree = KWayMerge(views, out);
    std::vector<float> out2(total);
    const std::uint64_t scan = KWayMergeHeadScan(views, out2);
    ASSERT_EQ(out, out2) << "ways=" << ways;

    std::size_t log2k = 0;
    while ((1u << log2k) < ways) ++log2k;
    EXPECT_LE(tree, total * log2k + ways) << "ways=" << ways;
    if (ways > 2) {
      EXPECT_LT(tree, scan) << "ways=" << ways;
    }
  }
}

}  // namespace
}  // namespace streamgpu::sort
