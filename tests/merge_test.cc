// Tests for the CPU-side run merging (sort/merge.h).

#include "sort/merge.h"

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace streamgpu::sort {
namespace {

std::vector<float> SortedRandom(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 100.0f);
  std::vector<float> v(n);
  for (float& x : v) x = dist(rng);
  std::sort(v.begin(), v.end());
  return v;
}

TEST(MergeTest, TwoWayBasic) {
  const std::vector<float> a{1, 3, 5};
  const std::vector<float> b{2, 4, 6};
  std::vector<float> out(6);
  TwoWayMerge(a, b, out);
  EXPECT_EQ(out, (std::vector<float>{1, 2, 3, 4, 5, 6}));
}

TEST(MergeTest, TwoWayEmptySides) {
  const std::vector<float> a{1, 2};
  const std::vector<float> empty;
  std::vector<float> out(2);
  TwoWayMerge(a, empty, out);
  EXPECT_EQ(out, a);
  TwoWayMerge(empty, a, out);
  EXPECT_EQ(out, a);
}

TEST(MergeTest, TwoWayIsStableTowardFirstRun) {
  // Ties take from `a` first (b[j] < a[i] strictly advances b).
  const std::vector<float> a{5, 5};
  const std::vector<float> b{5};
  std::vector<float> out(3);
  TwoWayMerge(a, b, out);
  EXPECT_EQ(out, (std::vector<float>{5, 5, 5}));
}

TEST(MergeTest, TwoWayComparisonsLinear) {
  const auto a = SortedRandom(1000, 1);
  const auto b = SortedRandom(1000, 2);
  std::vector<float> out(2000);
  const std::uint64_t comparisons = TwoWayMerge(a, b, out);
  EXPECT_LE(comparisons, 2000u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(MergeTest, FourWayMatchesStdSort) {
  std::array<std::vector<float>, 4> runs;
  std::vector<float> all;
  for (int i = 0; i < 4; ++i) {
    runs[i] = SortedRandom(100 + 37 * i, 10 + i);
    all.insert(all.end(), runs[i].begin(), runs[i].end());
  }
  std::vector<float> out(all.size());
  const std::array<std::span<const float>, 4> views{runs[0], runs[1], runs[2], runs[3]};
  const std::uint64_t comparisons = FourWayMerge(views, out);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(out, all);
  // "The merge routine performs O(n) comparisons" (§4.4): two levels of
  // binary merges, at most 2n comparisons.
  EXPECT_LE(comparisons, 2 * all.size());
}

TEST(MergeTest, FourWayWithEmptyRuns) {
  std::array<std::vector<float>, 4> runs;
  runs[0] = {1, 4};
  runs[2] = {2, 3};
  std::vector<float> out(4);
  const std::array<std::span<const float>, 4> views{runs[0], runs[1], runs[2], runs[3]};
  FourWayMerge(views, out);
  EXPECT_EQ(out, (std::vector<float>{1, 2, 3, 4}));
}

TEST(MergeTest, KWayMatchesStdSort) {
  std::mt19937 rng(77);
  for (int ways = 1; ways <= 9; ++ways) {
    std::vector<std::vector<float>> runs(ways);
    std::vector<float> all;
    for (int i = 0; i < ways; ++i) {
      runs[i] = SortedRandom(20 + 11 * i, 100 + i);
      all.insert(all.end(), runs[i].begin(), runs[i].end());
    }
    std::vector<std::span<const float>> views(runs.begin(), runs.end());
    std::vector<float> out(all.size());
    KWayMerge(views, out);
    std::sort(all.begin(), all.end());
    ASSERT_EQ(out, all) << "ways=" << ways;
  }
}

}  // namespace
}  // namespace streamgpu::sort
