// Tests for the observability layer (src/obs/): MetricsRegistry semantics
// (registration idempotence, sharded multi-thread recording, the runtime
// enable guard), TraceRecorder semantics (sampling, track naming, the span
// cap), the golden metrics-JSON schema, and trace well-formedness (balanced
// JSON, per-track monotone timestamps).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace streamgpu::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  const MetricId a = reg.Counter("ingest.elements");
  const MetricId b = reg.Counter("ingest.elements");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.Counter("ingest.batches"), a);

  const MetricId h = reg.Histogram("window", {10.0, 20.0});
  // Re-registration ignores the (different) bounds and returns the same id.
  EXPECT_EQ(reg.Histogram("window", {99.0}), h);
  reg.Record(h, 15.0);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].upper_bounds, (std::vector<double>{10.0, 20.0}));
}

TEST(MetricsRegistryTest, CountsGaugesAndHistogramBuckets) {
  MetricsRegistry reg;
  const MetricId c = reg.Counter("c");
  const MetricId g = reg.Gauge("g");
  const MetricId h = reg.Histogram("h", {1.0, 10.0});
  reg.Add(c);
  reg.Add(c, 41);
  reg.Set(g, 2.5);
  reg.Set(g, 7.5);  // last write wins
  reg.Record(h, 0.5);
  reg.Record(h, 5.0);
  reg.Record(h, 5.0);
  reg.Record(h, 100.0);  // beyond the last bound: +inf bucket

  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0], (std::pair<std::string, std::uint64_t>{"c", 42}));
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 7.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].counts, (std::vector<std::uint64_t>{1, 2, 1}));
  EXPECT_EQ(snap.histograms[0].count, 4u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum, 110.5);
}

TEST(MetricsRegistryTest, InvalidIdsAndDisabledRecordingAreDropped) {
  MetricsRegistry reg;
  const MetricId c = reg.Counter("c");
  reg.Add(kInvalidMetric);          // silently dropped
  reg.Record(kInvalidMetric, 1.0);  // silently dropped

  reg.set_enabled(false);
  reg.Add(c, 100);
  reg.set_enabled(true);
  reg.Add(c, 1);
  EXPECT_EQ(reg.Snapshot().counters[0].second, 1u);  // only the enabled Add
}

TEST(MetricsRegistryTest, ThreadsRecordIntoTheirOwnShardsAndMerge) {
  MetricsRegistry reg;
  const MetricId c = reg.Counter("c");
  const MetricId h = reg.Histogram("h", {1000.0});
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAddsPerThread; ++i) reg.Add(c);
      reg.Record(h, 1.0);
    });
  }
  for (auto& t : threads) t.join();

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters[0].second,
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(snap.histograms[0].count, static_cast<std::uint64_t>(kThreads));
  // Each recording thread created its own shard (no cross-thread contention).
  EXPECT_GE(reg.shard_count(), static_cast<std::size_t>(kThreads));
}

TEST(MetricsSnapshotTest, JsonMatchesGoldenSchema) {
  // The serialized snapshot is the exporter's wire format; this golden pins
  // the schema (docs/OBSERVABILITY.md) so accidental format drift fails CI.
  MetricsRegistry reg;
  reg.Add(reg.Counter("demo.batches"), 3);
  reg.Add(reg.Counter("demo.elements"), 1024);
  reg.Set(reg.Gauge("demo.ratio"), 0.25);
  const MetricId h = reg.Histogram("demo.window_elements", {64.0, 128.0, 256.0});
  reg.Record(h, 10.0);
  reg.Record(h, 100.0);
  reg.Record(h, 200.0);
  reg.Record(h, 1000.0);

  const std::string path = TempPath("metrics_schema.json");
  ASSERT_TRUE(reg.WriteJsonFile(path.c_str()));
  EXPECT_EQ(ReadFile(path),
            ReadFile(std::string(STREAMGPU_TEST_GOLDEN_DIR) +
                     "/metrics_schema.golden"));
}

TEST(TraceRecorderTest, SamplingGatesEveryKthSequence) {
  TraceRecorder every(1);
  EXPECT_TRUE(every.Sampled(0));
  EXPECT_TRUE(every.Sampled(1));
  EXPECT_TRUE(every.Sampled(7));

  TraceRecorder fourth(4);
  EXPECT_TRUE(fourth.Sampled(0));
  EXPECT_FALSE(fourth.Sampled(1));
  EXPECT_FALSE(fourth.Sampled(3));
  EXPECT_TRUE(fourth.Sampled(4));
  EXPECT_EQ(fourth.sample_every(), 4u);

  TraceRecorder zero(0);  // normalized to 1
  EXPECT_EQ(zero.sample_every(), 1u);
}

TEST(TraceRecorderTest, RecordsSpansPerThreadTrack) {
  TraceRecorder trace;
  trace.NameCurrentThread("main");
  trace.NameCurrentThread("ignored");  // first name wins
  trace.AddSpan("a", "test", 10.0, 5.0, {{"elements", 64.0}});
  std::thread worker([&] {
    trace.NameCurrentThread("worker");
    trace.AddSpan("b", "test", 12.0, 1.0);
  });
  worker.join();

  const auto spans = trace.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "a");
  EXPECT_EQ(spans[0].args.size(), 1u);
  EXPECT_NE(spans[0].tid, spans[1].tid);  // distinct tracks
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceRecorderTest, SpanCapCountsDropped) {
  TraceRecorder trace(1, 2);
  trace.AddSpan("a", "t", 0.0, 1.0);
  trace.AddSpan("b", "t", 1.0, 1.0);
  trace.AddSpan("c", "t", 2.0, 1.0);
  EXPECT_EQ(trace.snapshot().size(), 2u);
  EXPECT_EQ(trace.dropped(), 1u);
}

TEST(TraceRecorderTest, WrittenJsonIsBalancedAndPerTrackMonotone) {
  TraceRecorder trace;
  trace.NameCurrentThread("ingest");
  // Recorded at completion time, i.e. not in start order — WriteJson must
  // re-sort per track.
  trace.AddSpan("late", "test", 30.0, 2.0);
  trace.AddSpan("early", "test", 1.0, 2.0, {{"seq", 0.0}});
  trace.AddSpan("mid", "test", 15.0, 2.0);
  std::thread worker([&] {
    trace.NameCurrentThread("sort-0");
    trace.AddSpan("w-late", "test", 20.0, 1.0);
    trace.AddSpan("w-early", "test", 2.0, 1.0);
  });
  worker.join();

  const std::string path = TempPath("trace_wellformed.json");
  ASSERT_TRUE(trace.WriteJsonFile(path.c_str()));
  const std::string json = ReadFile(path);

  // Structurally valid: balanced braces/brackets (no strings in the file
  // contain either), one trailing newline, and the Chrome trace envelope.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"ingest\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"sort-0\""), std::string::npos);

  // Timestamps are monotone within each track, in file order.
  std::map<int, double> last_ts;
  std::size_t events = 0;
  for (std::size_t pos = json.find("{\"ph\": \"X\""); pos != std::string::npos;
       pos = json.find("{\"ph\": \"X\"", pos + 1)) {
    const std::size_t tid_pos = json.find("\"tid\": ", pos);
    const std::size_t ts_pos = json.find("\"ts\": ", pos);
    ASSERT_NE(tid_pos, std::string::npos);
    ASSERT_NE(ts_pos, std::string::npos);
    const int tid = std::stoi(json.substr(tid_pos + 7));
    const double ts = std::stod(json.substr(ts_pos + 6));
    auto [it, inserted] = last_ts.try_emplace(tid, ts);
    if (!inserted) {
      EXPECT_GE(ts, it->second) << "tid " << tid;
      it->second = ts;
    }
    ++events;
  }
  EXPECT_EQ(events, 5u);
}

}  // namespace
}  // namespace streamgpu::obs
