// Tests for the observability layer (src/obs/): MetricsRegistry semantics
// (registration idempotence, labels, sharded multi-thread recording, the
// runtime enable guard), the metric-key render/parse pair, the GK-backed
// StreamingSummary, the Prometheus exposition writer (including its golden),
// the background MetricsExporter, the FlightRecorder ring, TraceRecorder
// semantics (sampling, track naming, the span cap + drop counter), the
// golden metrics-JSON schema, and trace well-formedness.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <numeric>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/exporter.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/summary.h"
#include "obs/trace.h"

namespace streamgpu::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  const MetricId a = reg.Counter("ingest.elements");
  const MetricId b = reg.Counter("ingest.elements");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.Counter("ingest.batches"), a);

  const MetricId h = reg.Histogram("window", {10.0, 20.0});
  // Re-registration ignores the (different) bounds and returns the same id.
  EXPECT_EQ(reg.Histogram("window", {99.0}), h);
  reg.Record(h, 15.0);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].upper_bounds, (std::vector<double>{10.0, 20.0}));
}

TEST(MetricsRegistryTest, CountsGaugesAndHistogramBuckets) {
  MetricsRegistry reg;
  const MetricId c = reg.Counter("c");
  const MetricId g = reg.Gauge("g");
  const MetricId h = reg.Histogram("h", {1.0, 10.0});
  reg.Add(c);
  reg.Add(c, 41);
  reg.Set(g, 2.5);
  reg.Set(g, 7.5);  // last write wins
  reg.Record(h, 0.5);
  reg.Record(h, 5.0);
  reg.Record(h, 5.0);
  reg.Record(h, 100.0);  // beyond the last bound: +inf bucket

  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0], (std::pair<std::string, std::uint64_t>{"c", 42}));
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 7.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].counts, (std::vector<std::uint64_t>{1, 2, 1}));
  EXPECT_EQ(snap.histograms[0].count, 4u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum, 110.5);
}

TEST(MetricsRegistryTest, InvalidIdsAndDisabledRecordingAreDropped) {
  MetricsRegistry reg;
  const MetricId c = reg.Counter("c");
  reg.Add(kInvalidMetric);          // silently dropped
  reg.Record(kInvalidMetric, 1.0);  // silently dropped

  reg.set_enabled(false);
  reg.Add(c, 100);
  reg.set_enabled(true);
  reg.Add(c, 1);
  EXPECT_EQ(reg.Snapshot().counters[0].second, 1u);  // only the enabled Add
}

TEST(MetricsRegistryTest, ThreadsRecordIntoTheirOwnShardsAndMerge) {
  MetricsRegistry reg;
  const MetricId c = reg.Counter("c");
  const MetricId h = reg.Histogram("h", {1000.0});
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAddsPerThread; ++i) reg.Add(c);
      reg.Record(h, 1.0);
    });
  }
  for (auto& t : threads) t.join();

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters[0].second,
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(snap.histograms[0].count, static_cast<std::uint64_t>(kThreads));
  // Each recording thread created its own shard (no cross-thread contention).
  EXPECT_GE(reg.shard_count(), static_cast<std::size_t>(kThreads));
}

TEST(MetricsSnapshotTest, JsonMatchesGoldenSchema) {
  // The serialized snapshot is the exporter's wire format; this golden pins
  // the schema (docs/OBSERVABILITY.md) so accidental format drift fails CI.
  MetricsRegistry reg;
  reg.Add(reg.Counter("demo.batches"), 3);
  reg.Add(reg.Counter("demo.elements"), 1024);
  reg.Set(reg.Gauge("demo.ratio"), 0.25);
  const MetricId h = reg.Histogram("demo.window_elements", {64.0, 128.0, 256.0});
  reg.Record(h, 10.0);
  reg.Record(h, 100.0);
  reg.Record(h, 200.0);
  reg.Record(h, 1000.0);

  const std::string path = TempPath("metrics_schema.json");
  ASSERT_TRUE(reg.WriteJsonFile(path.c_str()));
  EXPECT_EQ(ReadFile(path),
            ReadFile(std::string(STREAMGPU_TEST_GOLDEN_DIR) +
                     "/metrics_schema.golden"));
}

TEST(RenderMetricKeyTest, BareNameSortedLabelsAndEscapes) {
  EXPECT_EQ(RenderMetricKey("sort.elements", {}), "sort.elements");
  EXPECT_EQ(RenderMetricKey("sort.elements", {{"b", "2"}, {"a", "1"}}),
            "sort.elements{a=\"1\",b=\"2\"}");
  EXPECT_EQ(RenderMetricKey("m", {{"k", "a\\b\"c\nd"}}),
            "m{k=\"a\\\\b\\\"c\\nd\"}");
}

TEST(ParseMetricKeyTest, RoundTripsRenderedKeys) {
  const std::vector<std::pair<std::string, MetricLabels>> cases = {
      {"freq.sort.elements", {}},
      {"freq.sort.elements", {{"backend", "pbsn"}}},
      {"m", {{"a", "1"}, {"b", "x y"}}},
      {"m", {{"k", "quote\" slash\\ nl\n"}}},
  };
  for (const auto& [name, labels] : cases) {
    const std::string key = RenderMetricKey(name, labels);
    std::string parsed_name;
    MetricLabels parsed;
    ASSERT_TRUE(ParseMetricKey(key, &parsed_name, &parsed)) << key;
    EXPECT_EQ(parsed_name, name);
    EXPECT_EQ(parsed, labels) << key;
  }
}

TEST(ParseMetricKeyTest, RejectsMalformedKeys) {
  std::string name;
  MetricLabels labels;
  for (const char* bad : {"", "m{", "m{a=1}", "m{a=\"v\"", "m{a=\"v\"}x",
                          "m{=\"v\"}", "m{a=\"v\"b=\"w\"}"}) {
    EXPECT_FALSE(ParseMetricKey(bad, &name, &labels)) << bad;
  }
}

TEST(MetricsRegistryTest, LabeledSeriesAreDistinctAndRenderCanonically) {
  MetricsRegistry reg;
  const MetricId flat = reg.Counter("sort.elements");
  const MetricId pbsn = reg.Counter("sort.elements", {{"backend", "pbsn"}});
  const MetricId radix = reg.Counter("sort.elements", {{"backend", "radix"}});
  EXPECT_NE(flat, pbsn);
  EXPECT_NE(pbsn, radix);
  // Label order does not matter: same canonical key, same id.
  EXPECT_EQ(reg.Counter("s", {{"a", "1"}, {"b", "2"}}),
            reg.Counter("s", {{"b", "2"}, {"a", "1"}}));

  reg.Add(flat, 10);
  reg.Add(pbsn, 7);
  reg.Add(radix, 3);
  const MetricsSnapshot snap = reg.Snapshot();
  std::map<std::string, std::uint64_t> counters(snap.counters.begin(),
                                                snap.counters.end());
  EXPECT_EQ(counters.at("sort.elements"), 10u);
  EXPECT_EQ(counters.at("sort.elements{backend=\"pbsn\"}"), 7u);
  EXPECT_EQ(counters.at("sort.elements{backend=\"radix\"}"), 3u);
}

TEST(MetricsRegistryTest, HistogramBoundaryValuesAreLeInclusive) {
  // A value equal to an upper bound belongs to that bound's bucket, so the
  // Prometheus cumulative le mapping is exact (le="10" includes 10.0).
  MetricsRegistry reg;
  const MetricId h = reg.Histogram("h", {10.0, 20.0});
  reg.Record(h, 10.0);
  reg.Record(h, 20.0);
  reg.Record(h, 20.0000001);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].counts, (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(MetricsRegistryTest, EmptyInstrumentsSerializeInBothFormats) {
  // Registered-but-never-recorded instruments must serialize cleanly: zero
  // counts, empty quantile list, and a Prometheus +Inf bucket equal to the
  // (zero) _count.
  MetricsRegistry reg;
  reg.Counter("c");
  reg.Gauge("g");
  reg.Histogram("h", {1.0});
  reg.Summary("s");

  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.summaries.size(), 1u);
  EXPECT_EQ(snap.summaries[0].count, 0u);
  EXPECT_TRUE(snap.summaries[0].quantiles.empty());
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0u);

  const std::string json_path = TempPath("metrics_empty.json");
  const std::string prom_path = TempPath("metrics_empty.prom");
  ASSERT_TRUE(reg.WriteJsonFile(json_path.c_str()));
  ASSERT_TRUE(WritePrometheusFile(snap, prom_path.c_str()));
  const std::string prom = ReadFile(prom_path);
  EXPECT_NE(prom.find("streamgpu_c_total 0"), std::string::npos);
  EXPECT_NE(prom.find("streamgpu_h_bucket{le=\"+Inf\"} 0"), std::string::npos);
  EXPECT_NE(prom.find("streamgpu_s_count 0"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationRacesSnapshotSafely) {
  // Threads registering fresh instruments and recording through them while
  // another thread snapshots: no torn state, no lost registrations. Run
  // under TSan in CI.
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) reg.Snapshot();
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string tag =
            "race.t" + std::to_string(t) + ".i" + std::to_string(i);
        reg.Add(reg.Counter(tag + ".c"), 1);
        reg.Record(reg.Histogram(tag + ".h", {1.0, 2.0}), 1.5);
        reg.Observe(reg.Summary(tag + ".s"), 3.0);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.size(), std::size_t{kThreads} * kPerThread);
  EXPECT_EQ(snap.histograms.size(), std::size_t{kThreads} * kPerThread);
  EXPECT_EQ(snap.summaries.size(), std::size_t{kThreads} * kPerThread);
  for (const auto& [name, value] : snap.counters) EXPECT_EQ(value, 1u) << name;
}

TEST(StreamingSummaryTest, QuantilesStayWithinTheHonestBound) {
  // Shuffled distinct integers make exact ranks trivial: value v has rank
  // v + 1. Every queried quantile must land within epsilon() * n of its
  // target rank, and the honest bound must respect the configured target.
  constexpr std::uint64_t kN = 50000;
  std::vector<double> values(kN);
  std::iota(values.begin(), values.end(), 0.0);
  std::mt19937 rng(7);
  std::shuffle(values.begin(), values.end(), rng);

  StreamingSummary summary(0.01);
  for (double v : values) summary.Observe(v);
  ASSERT_EQ(summary.count(), kN);
  EXPECT_DOUBLE_EQ(summary.sum(), static_cast<double>(kN) * (kN - 1) / 2);
  EXPECT_LE(summary.epsilon(), 0.01);
  for (double phi : {0.5, 0.9, 0.99}) {
    const double rank = summary.Quantile(phi) + 1;
    const double target = std::ceil(phi * static_cast<double>(kN));
    EXPECT_LE(std::abs(rank - target), summary.epsilon() * kN) << phi;
  }
  // The whole point: bounded memory, far below the 50k raw observations.
  EXPECT_LT(summary.TupleCount(), 8000u);
}

TEST(StreamingSummaryTest, EmptyAndSingleObservation) {
  StreamingSummary summary;
  EXPECT_EQ(summary.count(), 0u);
  EXPECT_DOUBLE_EQ(summary.Quantile(0.5), 0.0);
  summary.Observe(42.0);
  EXPECT_EQ(summary.count(), 1u);
  EXPECT_DOUBLE_EQ(summary.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(summary.Quantile(0.99), 42.0);
}

TEST(MetricsRegistryTest, SummarySnapshotCarriesQuantilesAndEpsilon) {
  MetricsRegistry reg;
  const MetricId s = reg.Summary("lat", {{"backend", "pbsn"}}, 0.02);
  EXPECT_EQ(reg.Summary("lat", {{"backend", "pbsn"}}, 0.5), s);  // idempotent
  constexpr int kN = 1000;
  for (int i = 1; i <= kN; ++i) reg.Observe(s, static_cast<double>(i));

  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.summaries.size(), 1u);
  const auto& sum = snap.summaries[0];
  EXPECT_EQ(sum.name, "lat{backend=\"pbsn\"}");
  EXPECT_EQ(sum.count, static_cast<std::uint64_t>(kN));
  EXPECT_DOUBLE_EQ(sum.sum, kN * (kN + 1) / 2.0);
  EXPECT_LE(sum.epsilon, 0.02);
  ASSERT_EQ(sum.quantiles.size(), kSummaryQuantiles.size());
  for (std::size_t i = 0; i < sum.quantiles.size(); ++i) {
    EXPECT_DOUBLE_EQ(sum.quantiles[i].first, kSummaryQuantiles[i]);
    const double target = std::ceil(kSummaryQuantiles[i] * kN);
    EXPECT_LE(std::abs(sum.quantiles[i].second - target), sum.epsilon * kN);
  }
}

TEST(PrometheusTest, SanitizesNamesAndAddsThePrefix) {
  EXPECT_EQ(PrometheusName("freq.sort.latency_us"),
            "streamgpu_freq_sort_latency_us");
  EXPECT_EQ(PrometheusName("a-b c"), "streamgpu_a_b_c");
}

TEST(PrometheusTest, ExpositionMatchesGolden) {
  // Pins the full text-exposition mapping (prefix, _total, cumulative
  // buckets, quantile series + the sibling _error gauge family) the same
  // way metrics_schema.golden pins the JSON schema.
  MetricsRegistry reg;
  reg.Add(reg.Counter("demo.batches"), 3);
  reg.Add(reg.Counter("sort.elements", {{"backend", "pbsn"}}), 1024);
  reg.Add(reg.Counter("sort.elements", {{"backend", "radix"}}), 512);
  reg.Set(reg.Gauge("demo.ratio"), 0.25);
  const MetricId h = reg.Histogram("demo.window_elements", {64.0, 128.0, 256.0});
  for (double v : {10.0, 64.0, 100.0, 256.0, 1000.0}) reg.Record(h, v);
  const MetricId s = reg.Summary("demo.latency_us", {{"stage", "sort"}});
  for (int i = 1; i <= 100; ++i) reg.Observe(s, static_cast<double>(i));

  const std::string path = TempPath("metrics_prom.prom");
  ASSERT_TRUE(WritePrometheusFile(reg.Snapshot(), path.c_str()));
  EXPECT_EQ(ReadFile(path),
            ReadFile(std::string(STREAMGPU_TEST_GOLDEN_DIR) +
                     "/metrics_prom.golden"));
}

TEST(MetricsExporterTest, PublishesPeriodicallyAndOnStop) {
  MetricsRegistry reg;
  const MetricId c = reg.Counter("exported.count");
  reg.Add(c, 1);

  MetricsExporterOptions opt;
  opt.path = TempPath("exported_metrics.json");
  opt.period_seconds = 0.002;
  MetricsExporter exporter(&reg, opt);
  // Wait (bounded) for at least one periodic export.
  for (int i = 0; i < 1000 && exporter.exports() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(exporter.exports(), 1u);

  reg.Add(c, 41);
  exporter.Stop();
  exporter.Stop();  // idempotent
  EXPECT_EQ(exporter.failures(), 0u);
  // Stop() exports once more, so the artifact reflects the final state.
  EXPECT_NE(ReadFile(opt.path).find("\"exported.count\": 42"),
            std::string::npos);
}

TEST(MetricsExporterTest, PrometheusFormatRoundTrips) {
  MetricsRegistry reg;
  reg.Add(reg.Counter("exported.count", {{"backend", "pbsn"}}), 5);
  MetricsExporterOptions opt;
  opt.path = TempPath("exported_metrics.prom");
  opt.period_seconds = 60.0;  // only the ExportOnce/Stop writes matter
  opt.format = MetricsFormat::kProm;
  MetricsExporter exporter(&reg, opt);
  ASSERT_TRUE(exporter.ExportOnce());
  exporter.Stop();
  const std::string prom = ReadFile(opt.path);
  EXPECT_NE(prom.find("# TYPE streamgpu_exported_count_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("streamgpu_exported_count_total{backend=\"pbsn\"} 5"),
            std::string::npos);
}

TEST(FlightRecorderTest, RingKeepsNewestAndCountsTotal) {
  FlightRecorder flight(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    flight.Record(FlightEventKind::kBatchSorted, "sort", "pbsn", i,
                  static_cast<std::int64_t>(i * 100));
  }
  EXPECT_EQ(flight.total_events(), 10u);
  const auto events = flight.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().index, 6u);  // oldest retained
  EXPECT_EQ(events.back().index, 9u);   // newest
  EXPECT_EQ(events.back().seq, 9u);
  EXPECT_EQ(events.back().a, 900);
}

TEST(FlightRecorderTest, DumpWithoutPathIsANoOp) {
  FlightRecorder flight;
  flight.Record(FlightEventKind::kDrainFailed, "pipeline", "");
  EXPECT_FALSE(flight.Dump("whatever"));
  EXPECT_EQ(flight.dumps(), 0u);
}

TEST(FlightRecorderTest, DumpWritesReasonAndEvents) {
  FlightRecorder flight;
  flight.set_dump_path(TempPath("flight_dump.json"));
  flight.Record(FlightEventKind::kBackendChosen, "plan", "pbsn", 0, 4);
  flight.Record(FlightEventKind::kWindowQuarantined, "sort", "pbsn", 7, 7, 1024);
  ASSERT_TRUE(flight.Dump("test-quarantine"));
  EXPECT_EQ(flight.dumps(), 1u);
  const std::string dump = ReadFile(flight.dump_path());
  EXPECT_NE(dump.find("\"reason\": \"test-quarantine\""), std::string::npos);
  EXPECT_NE(dump.find("backend_chosen"), std::string::npos);
  EXPECT_NE(dump.find("window_quarantined"), std::string::npos);
}

TEST(TraceRecorderTest, SpanCapDropsMirrorIntoBoundCounter) {
  // The spans_dropped counter makes silent trace truncation visible in the
  // exported metrics (docs/OBSERVABILITY.md).
  MetricsRegistry reg;
  TraceRecorder trace(1, 2);
  trace.BindDropCounter(&reg);
  trace.AddSpan("a", "t", 0.0, 1.0);
  trace.AddSpan("b", "t", 1.0, 1.0);
  trace.AddSpan("c", "t", 2.0, 1.0);
  trace.AddSpan("d", "t", 3.0, 1.0);
  EXPECT_EQ(trace.dropped(), 2u);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0],
            (std::pair<std::string, std::uint64_t>{"obs.trace.spans_dropped", 2}));
}

TEST(TraceRecorderTest, SamplingGatesEveryKthSequence) {
  TraceRecorder every(1);
  EXPECT_TRUE(every.Sampled(0));
  EXPECT_TRUE(every.Sampled(1));
  EXPECT_TRUE(every.Sampled(7));

  TraceRecorder fourth(4);
  EXPECT_TRUE(fourth.Sampled(0));
  EXPECT_FALSE(fourth.Sampled(1));
  EXPECT_FALSE(fourth.Sampled(3));
  EXPECT_TRUE(fourth.Sampled(4));
  EXPECT_EQ(fourth.sample_every(), 4u);

  TraceRecorder zero(0);  // normalized to 1
  EXPECT_EQ(zero.sample_every(), 1u);
}

TEST(TraceRecorderTest, RecordsSpansPerThreadTrack) {
  TraceRecorder trace;
  trace.NameCurrentThread("main");
  trace.NameCurrentThread("ignored");  // first name wins
  trace.AddSpan("a", "test", 10.0, 5.0, {{"elements", 64.0}});
  std::thread worker([&] {
    trace.NameCurrentThread("worker");
    trace.AddSpan("b", "test", 12.0, 1.0);
  });
  worker.join();

  const auto spans = trace.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "a");
  EXPECT_EQ(spans[0].args.size(), 1u);
  EXPECT_NE(spans[0].tid, spans[1].tid);  // distinct tracks
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceRecorderTest, SpanCapCountsDropped) {
  TraceRecorder trace(1, 2);
  trace.AddSpan("a", "t", 0.0, 1.0);
  trace.AddSpan("b", "t", 1.0, 1.0);
  trace.AddSpan("c", "t", 2.0, 1.0);
  EXPECT_EQ(trace.snapshot().size(), 2u);
  EXPECT_EQ(trace.dropped(), 1u);
}

TEST(TraceRecorderTest, WrittenJsonIsBalancedAndPerTrackMonotone) {
  TraceRecorder trace;
  trace.NameCurrentThread("ingest");
  // Recorded at completion time, i.e. not in start order — WriteJson must
  // re-sort per track.
  trace.AddSpan("late", "test", 30.0, 2.0);
  trace.AddSpan("early", "test", 1.0, 2.0, {{"seq", 0.0}});
  trace.AddSpan("mid", "test", 15.0, 2.0);
  std::thread worker([&] {
    trace.NameCurrentThread("sort-0");
    trace.AddSpan("w-late", "test", 20.0, 1.0);
    trace.AddSpan("w-early", "test", 2.0, 1.0);
  });
  worker.join();

  const std::string path = TempPath("trace_wellformed.json");
  ASSERT_TRUE(trace.WriteJsonFile(path.c_str()));
  const std::string json = ReadFile(path);

  // Structurally valid: balanced braces/brackets (no strings in the file
  // contain either), one trailing newline, and the Chrome trace envelope.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"ingest\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"sort-0\""), std::string::npos);

  // Timestamps are monotone within each track, in file order.
  std::map<int, double> last_ts;
  std::size_t events = 0;
  for (std::size_t pos = json.find("{\"ph\": \"X\""); pos != std::string::npos;
       pos = json.find("{\"ph\": \"X\"", pos + 1)) {
    const std::size_t tid_pos = json.find("\"tid\": ", pos);
    const std::size_t ts_pos = json.find("\"ts\": ", pos);
    ASSERT_NE(tid_pos, std::string::npos);
    ASSERT_NE(ts_pos, std::string::npos);
    const int tid = std::stoi(json.substr(tid_pos + 7));
    const double ts = std::stod(json.substr(ts_pos + 6));
    auto [it, inserted] = last_ts.try_emplace(tid, ts);
    if (!inserted) {
      EXPECT_GE(ts, it->second) << "tid " << tid;
      it->second = ts;
    }
    ++events;
  }
  EXPECT_EQ(events, 5u);
}

}  // namespace
}  // namespace streamgpu::obs
