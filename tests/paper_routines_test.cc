// Verifies the verbatim GL transcription of the paper's Routines 4.1-4.4
// (sort/paper_routines.h) against both the scalar PBSN reference and the
// optimized sorter implementation.

#include "sort/paper_routines.h"

#include <algorithm>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "gpu/device.h"
#include "hwmodel/hardware_profiles.h"
#include "sort/pbsn_gpu.h"
#include "sort/pbsn_network.h"

namespace streamgpu::sort {
namespace {

// Runs the paper-routine PBSN over four channel sequences and returns the
// sorted framebuffer channels.
std::array<std::vector<float>, 4> RunPaperPbsn(
    const std::array<std::vector<float>, 4>& channels, int width, int height) {
  const std::size_t padded = static_cast<std::size_t>(width) * height;
  gpu::GpuDevice device;
  gpu::GlContext gl(&device);
  const auto tex = device.CreateTexture(width, height, gpu::Format::kFloat32);
  for (int c = 0; c < 4; ++c) {
    std::vector<float> staging(padded, std::numeric_limits<float>::infinity());
    std::copy(channels[c].begin(), channels[c].end(), staging.begin());
    device.UploadChannel(tex, c, staging);
  }
  device.BindFramebuffer(width, height, gpu::Format::kFloat32);

  paper::Pbsn(gl, tex, width, height);

  std::array<std::vector<float>, 4> out;
  for (int c = 0; c < 4; ++c) {
    out[c].resize(padded);
    device.ReadbackChannel(c, out[c]);
    out[c].resize(channels[c].size());
  }
  return out;
}

TEST(PaperRoutinesTest, CopyIsIdentity) {
  gpu::GpuDevice device;
  gpu::GlContext gl(&device);
  const auto tex = device.CreateTexture(8, 4, gpu::Format::kFloat32);
  std::mt19937 rng(1);
  std::uniform_real_distribution<float> d(0, 100);
  std::vector<float> data(32);
  for (float& v : data) v = d(rng);
  device.UploadChannel(tex, 0, data);
  device.BindFramebuffer(8, 4, gpu::Format::kFloat32);

  paper::Copy(gl, tex, 8, 4);

  std::vector<float> out(32);
  device.ReadbackChannel(0, out);
  EXPECT_EQ(out, data);
}

TEST(PaperRoutinesTest, ComputeMinMatchesMirroredMinimum) {
  // Routine 4.2 over a full-texture block.
  gpu::GpuDevice device;
  gpu::GlContext gl(&device);
  const int w = 8;
  const int h = 4;
  const auto tex = device.CreateTexture(w, h, gpu::Format::kFloat32);
  std::mt19937 rng(2);
  std::uniform_real_distribution<float> d(0, 100);
  std::vector<float> data(static_cast<std::size_t>(w) * h);
  for (float& v : data) v = d(rng);
  device.UploadChannel(tex, 0, data);
  device.BindFramebuffer(w, h, gpu::Format::kFloat32);

  paper::Copy(gl, tex, w, h);
  paper::ComputeMin(gl, tex, 0, w, h);

  std::vector<float> out(data.size());
  device.ReadbackChannel(0, out);
  for (std::size_t i = 0; i < data.size() / 2; ++i) {
    EXPECT_EQ(out[i], std::min(data[i], data[data.size() - 1 - i])) << i;
  }
}

TEST(PaperRoutinesTest, SortStepEqualsScalarNetworkStep) {
  const int w = 8;
  const int h = 8;
  std::mt19937 rng(3);
  std::uniform_real_distribution<float> d(0, 100);
  for (int block = 2; block <= w * h; block *= 2) {
    gpu::GpuDevice device;
    gpu::GlContext gl(&device);
    const auto tex = device.CreateTexture(w, h, gpu::Format::kFloat32);
    std::vector<float> data(static_cast<std::size_t>(w) * h);
    for (float& v : data) v = d(rng);
    device.UploadChannel(tex, 0, data);
    device.BindFramebuffer(w, h, gpu::Format::kFloat32);

    paper::Copy(gl, tex, w, h);
    paper::SortStep(gl, tex, w, h, block);

    std::vector<float> expected = data;
    PbsnStepCpu(expected, static_cast<std::size_t>(block));
    std::vector<float> out(data.size());
    device.ReadbackChannel(0, out);
    ASSERT_EQ(out, expected) << "block " << block;
  }
}

TEST(PaperRoutinesTest, FullPbsnSortsEveryChannel) {
  std::mt19937 rng(4);
  std::uniform_real_distribution<float> d(0, 1000);
  std::array<std::vector<float>, 4> channels;
  for (int c = 0; c < 4; ++c) {
    channels[c].resize(c == 3 ? 100 : 128);  // one short (padded) channel
    for (float& v : channels[c]) v = d(rng);
  }
  const auto sorted = RunPaperPbsn(channels, 16, 8);
  for (int c = 0; c < 4; ++c) {
    std::vector<float> expected = channels[c];
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(sorted[c], expected) << "channel " << c;
  }
}

TEST(PaperRoutinesTest, MatchesOptimizedImplementationBitExactly) {
  // The verbatim transcription and the optimized sorter must agree on the
  // final sorted data AND on the work they issue to the device.
  std::mt19937 rng(5);
  std::uniform_real_distribution<float> d(0, 1000);
  std::vector<float> data(4096);
  for (float& v : data) v = d(rng);

  // Optimized implementation.
  gpu::GpuDevice fast_device;
  PbsnGpuSorter sorter(&fast_device, hwmodel::kGeForce6800Ultra,
                       hwmodel::kPentium4_3400);
  std::vector<float> fast = data;
  sorter.Sort(fast);

  // Paper transcription: same 4-way split, same texture shape (1024 texels
  // per channel -> 32x32), CPU merge at the end.
  std::array<std::vector<float>, 4> channels;
  for (int c = 0; c < 4; ++c) {
    channels[c].assign(data.begin() + c * 1024, data.begin() + (c + 1) * 1024);
  }
  gpu::GpuDevice paper_device;
  {
    gpu::GlContext gl(&paper_device);
    const auto tex = paper_device.CreateTexture(32, 32, gpu::Format::kFloat32);
    for (int c = 0; c < 4; ++c) paper_device.UploadChannel(tex, c, channels[c]);
    paper_device.BindFramebuffer(32, 32, gpu::Format::kFloat32);
    paper::Pbsn(gl, tex, 32, 32);
    for (int c = 0; c < 4; ++c) paper_device.ReadbackChannel(c, channels[c]);
  }
  std::vector<float> merged;
  for (int c = 0; c < 4; ++c) {
    merged.insert(merged.end(), channels[c].begin(), channels[c].end());
  }
  std::inplace_merge(merged.begin(), merged.begin() + 2048, merged.begin() + 3072);
  std::sort(merged.begin(), merged.end());  // final combine for the check

  std::vector<float> expected = data;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(fast, expected);
  EXPECT_EQ(merged, expected);

  // Identical device work: fragments, blends, copies, draws.
  EXPECT_EQ(paper_device.stats().fragments_shaded,
            fast_device.stats().fragments_shaded);
  EXPECT_EQ(paper_device.stats().blend_fragments, fast_device.stats().blend_fragments);
  EXPECT_EQ(paper_device.stats().fb_to_texture_copies,
            fast_device.stats().fb_to_texture_copies);
  EXPECT_EQ(paper_device.stats().draw_calls, fast_device.stats().draw_calls);
}

TEST(GlContextTest, StateChecks) {
  gpu::GpuDevice device;
  gpu::GlContext gl(&device);
  EXPECT_DEATH(gl.Vertex2f(0, 0), "outside glBegin");
  gl.Begin(gpu::GlContext::kQuads);
  EXPECT_DEATH(gl.Begin(gpu::GlContext::kQuads), "nested");
  gl.TexCoord2f(0, 0);
  // The draw fires on the fourth vertex; texturing must be enabled by then.
  gl.Vertex2f(0, 0);
  gl.Vertex2f(1, 0);
  gl.Vertex2f(1, 1);
  EXPECT_DEATH(gl.Vertex2f(0, 1), "GL_TEXTURE_2D");
}

}  // namespace
}  // namespace streamgpu::sort
