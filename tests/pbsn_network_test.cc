// Tests for the PBSN comparator schedule (sort/pbsn_network.h): the scalar
// reference the GPU implementation is validated against.

#include "sort/pbsn_network.h"

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace streamgpu::sort {
namespace {

TEST(PbsnNetworkTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1023), 10);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
  EXPECT_EQ(CeilLog2(std::uint64_t{1} << 40), 40);
}

TEST(PbsnNetworkTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

TEST(PbsnNetworkTest, StepComparesMirroredPairs) {
  // Block size 4 over 8 elements: within each block, i vs B-1-i.
  std::vector<float> v{4, 3, 2, 1, 8, 5, 6, 7};
  PbsnStepCpu(v, 4);
  // Block 0: (4 vs 1) -> min 1 at 0, max 4 at 3; (3 vs 2) -> 2 at 1, 3 at 2.
  EXPECT_EQ(v, (std::vector<float>{1, 2, 3, 4, 7, 5, 6, 8}));
}

TEST(PbsnNetworkTest, ComparatorCount) {
  // n/2 comparators per step, (log2 n)^2 steps.
  EXPECT_EQ(PbsnComparatorCount(2), 1u);          // 1 * 1 step
  EXPECT_EQ(PbsnComparatorCount(4), 8u);          // 2 * 4 steps
  EXPECT_EQ(PbsnComparatorCount(8), 36u);         // 4 * 9
  EXPECT_EQ(PbsnComparatorCount(1024), 51200u);   // 512 * 100
  EXPECT_EQ(PbsnComparatorCount(1), 0u);
}

// The 0/1 principle: a comparator network sorts all inputs iff it sorts all
// 0/1 inputs. Exhaustive over every 0/1 input for n up to 64.
TEST(PbsnNetworkTest, ZeroOnePrincipleExhaustiveSmall) {
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    const std::uint64_t combos = std::uint64_t{1} << n;
    for (std::uint64_t mask = 0; mask < combos; ++mask) {
      std::vector<float> v(n);
      for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<float>((mask >> i) & 1);
      std::vector<float> expected = v;
      std::sort(expected.begin(), expected.end());
      PbsnSortCpu(v);
      ASSERT_EQ(v, expected) << "n=" << n << " mask=" << mask;
    }
  }
}

TEST(PbsnNetworkTest, ZeroOnePrincipleRandomLarge) {
  std::mt19937_64 rng(99);
  for (std::size_t n : {32u, 64u, 256u, 1024u}) {
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<float> v(n);
      for (float& x : v) x = static_cast<float>(rng() & 1);
      std::vector<float> expected = v;
      std::sort(expected.begin(), expected.end());
      PbsnSortCpu(v);
      ASSERT_EQ(v, expected) << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(PbsnNetworkTest, SortsRandomFloats) {
  std::mt19937 rng(5);
  std::uniform_real_distribution<float> dist(-1e6f, 1e6f);
  for (std::size_t n : {2u, 8u, 64u, 512u, 4096u}) {
    std::vector<float> v(n);
    for (float& x : v) x = dist(rng);
    std::vector<float> expected = v;
    std::sort(expected.begin(), expected.end());
    PbsnSortCpu(v);
    ASSERT_EQ(v, expected) << n;
  }
}

TEST(PbsnNetworkTest, SortsAdversarialPatterns) {
  for (std::size_t n : {16u, 256u}) {
    std::vector<std::vector<float>> cases;
    std::vector<float> asc(n), desc(n), organ(n), equal(n, 7.0f);
    for (std::size_t i = 0; i < n; ++i) {
      asc[i] = static_cast<float>(i);
      desc[i] = static_cast<float>(n - i);
      organ[i] = static_cast<float>(i < n / 2 ? i : n - i);
    }
    cases = {asc, desc, organ, equal};
    for (auto& v : cases) {
      std::vector<float> expected = v;
      std::sort(expected.begin(), expected.end());
      PbsnSortCpu(v);
      ASSERT_EQ(v, expected);
    }
  }
}

TEST(PbsnNetworkTest, RequiresPowerOfTwo) {
  std::vector<float> v{3, 2, 1};
  EXPECT_DEATH(PbsnSortCpu(v), "power-of-two");
}

TEST(PbsnNetworkTest, StageIsIdempotentOnSortedInput) {
  std::vector<float> v{1, 2, 3, 4, 5, 6, 7, 8};
  PbsnStageCpu(v);
  EXPECT_EQ(v, (std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8}));
}

}  // namespace
}  // namespace streamgpu::sort
