// Pipeline determinism suite: the parallel multi-window ingest pipeline
// (stream::SortPipeline and its wiring through the core estimators) must be
// an execution-mode change only. For every backend, worker count, and seed,
// pipelined execution has to produce byte-identical query answers and
// identical operation counts / simulated-2005 times to serial execution,
// because the single summary thread drains sorted windows in submission
// order. Plus shutdown/flush-mid-window edge cases.

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/stream_miner.h"
#include "hwmodel/hardware_profiles.h"
#include "obs/metrics.h"
#include "sort/cpu_sort.h"
#include "stream/generator.h"
#include "stream/pipeline.h"
#include "stream/window_buffer.h"

namespace streamgpu::core {
namespace {

std::vector<float> ZipfStream(std::size_t n, unsigned seed) {
  stream::StreamGenerator gen({.distribution = stream::Distribution::kZipf,
                               .seed = seed,
                               .domain_size = 400});
  return gen.Take(n);
}

// Everything observable about a StreamMiner after a run: query answers,
// space, and the full deterministic slice of the cost records (wall-clock
// fields excluded — those legitimately differ across execution modes).
struct Snapshot {
  FrequencyReport hitters;
  FrequencyReport top3;
  std::vector<float> quantiles;
  std::vector<std::uint64_t> probe_counts;
  std::uint64_t freq_processed = 0;
  std::uint64_t quant_processed = 0;
  std::size_t freq_summary = 0;
  std::size_t quant_summary = 0;
  double freq_sim_seconds = 0;
  double quant_sim_seconds = 0;
  double freq_sort_sim = 0;
  double quant_sort_sim = 0;
  std::uint64_t freq_comparisons = 0;
  std::uint64_t quant_comparisons = 0;
  std::uint64_t freq_hist_elements = 0;
  std::uint64_t quant_hist_elements = 0;
  std::uint64_t freq_merged = 0;
  std::uint64_t freq_compressed = 0;
  gpu::GpuStats freq_device;
  gpu::GpuStats quant_device;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

Snapshot Capture(const StreamMiner& miner) {
  Snapshot s;
  const auto& fe = miner.frequencies();
  const auto& qe = miner.quantiles();
  s.hitters = fe.HeavyHitters(0.02);
  s.top3 = fe.TopK(3);
  for (double phi : {0.1, 0.5, 0.9, 0.99}) {
    s.quantiles.push_back(qe.Quantile(phi).value);
  }
  for (float probe : {0.0f, 1.0f, 5.0f, 123.0f}) {
    s.probe_counts.push_back(fe.EstimateCount(probe));
  }
  s.freq_processed = fe.processed_length();
  s.quant_processed = qe.processed_length();
  s.freq_summary = fe.summary_size();
  s.quant_summary = qe.summary_size();
  s.freq_sim_seconds = fe.SimulatedSeconds();
  s.quant_sim_seconds = qe.SimulatedSeconds();
  s.freq_sort_sim = fe.costs().sort.simulated_seconds;
  s.quant_sort_sim = qe.costs().sort.simulated_seconds;
  s.freq_comparisons = fe.costs().sort.comparisons;
  s.quant_comparisons = qe.costs().sort.comparisons;
  s.freq_hist_elements = fe.costs().histogram_elements;
  s.quant_hist_elements = qe.costs().histogram_elements;
  s.freq_merged = fe.costs().merged_entries;
  s.freq_compressed = fe.costs().compressed_entries;
  s.freq_device = fe.device_stats();
  s.quant_device = qe.device_stats();
  return s;
}

Snapshot RunMiner(Options opt, const std::vector<float>& data) {
  StreamMiner miner(opt);
  miner.ObserveBatch(data);
  miner.Flush();
  return Capture(miner);
}

constexpr Backend kAllBackends[] = {Backend::kGpuPbsn, Backend::kGpuBitonic,
                                    Backend::kCpuQuicksort, Backend::kCpuStdSort};

TEST(PipelineDeterminismTest, MatchesSerialAcrossBackendsWorkersAndSeeds) {
  for (unsigned seed : {1u, 2u}) {
    const auto data = ZipfStream(12000, seed);
    for (Backend backend : kAllBackends) {
      Options opt;
      opt.epsilon = 0.01;
      opt.backend = backend;

      opt.num_sort_workers = 1;  // serial reference
      const Snapshot serial = RunMiner(opt, data);

      for (int workers : {2, 8}) {
        opt.num_sort_workers = workers;
        const Snapshot pipelined = RunMiner(opt, data);
        EXPECT_EQ(pipelined, serial)
            << BackendName(backend) << " seed=" << seed << " workers=" << workers;
      }
    }
  }
}

TEST(PipelineDeterminismTest, MatchesSerialInSlidingMode) {
  const auto data = ZipfStream(15000, 3);
  for (Backend backend : {Backend::kGpuPbsn, Backend::kCpuQuicksort}) {
    Options opt;
    opt.epsilon = 0.01;
    opt.backend = backend;
    opt.sliding_window = 5000;

    opt.num_sort_workers = 1;
    const Snapshot serial = RunMiner(opt, data);

    opt.num_sort_workers = 4;
    const Snapshot pipelined = RunMiner(opt, data);
    EXPECT_EQ(pipelined, serial) << BackendName(backend);
  }
}

TEST(PipelineDeterminismTest, MidStreamQueriesMatchSerial) {
  // Queries synchronize with the pipeline (drain everything in flight), so a
  // mid-stream query sees exactly the serial state at the same point.
  const auto data = ZipfStream(9000, 4);
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kGpuPbsn;

  Options serial_opt = opt;
  serial_opt.num_sort_workers = 1;
  Options pipe_opt = opt;
  pipe_opt.num_sort_workers = 3;

  FrequencyEstimator serial(serial_opt);
  FrequencyEstimator pipelined(pipe_opt);
  for (std::size_t i = 0; i < data.size(); ++i) {
    serial.Observe(data[i]);
    pipelined.Observe(data[i]);
    if (i == data.size() / 3 || i == 2 * data.size() / 3) {
      EXPECT_EQ(pipelined.HeavyHitters(0.03), serial.HeavyHitters(0.03)) << i;
      EXPECT_EQ(pipelined.processed_length(), serial.processed_length()) << i;
      EXPECT_EQ(pipelined.SimulatedSeconds(), serial.SimulatedSeconds()) << i;
    }
  }
  serial.Flush();
  pipelined.Flush();
  EXPECT_EQ(pipelined.HeavyHitters(0.02), serial.HeavyHitters(0.02));
}

TEST(PipelineDeterminismTest, SplitIngestAndTerminalFlushMatchSerial) {
  // Ingest in unaligned spans (the final window is partial), finalize once,
  // and hit the post-Flush lifecycle: both modes must chunk the stream
  // identically and reject late observations the same way.
  const auto data = ZipfStream(1234, 5);
  for (Backend backend : {Backend::kGpuPbsn, Backend::kCpuStdSort}) {
    Options opt;
    opt.epsilon = 0.02;  // window 50: 1234 is mid-window for any batch size
    opt.backend = backend;

    auto run_split = [&](int workers) {
      Options o = opt;
      o.num_sort_workers = workers;
      StreamMiner miner(o);
      const std::size_t cut = 533;  // mid-window split
      EXPECT_TRUE(miner.ObserveBatch(std::span(data.data(), cut)).ok());
      EXPECT_TRUE(
          miner.ObserveBatch(std::span(data.data() + cut, data.size() - cut)).ok());
      miner.Flush();
      miner.Flush();  // idempotent
      EXPECT_TRUE(miner.finalized());
      EXPECT_EQ(miner.Observe(1.0f).code(), Status::Code::kFailedPrecondition);
      return Capture(miner);
    };
    EXPECT_EQ(run_split(4), run_split(1)) << BackendName(backend);
  }
}

TEST(PipelineDeterminismTest, PipelineCostsRecordWaitAccounting) {
  const auto data = ZipfStream(8000, 6);
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kCpuStdSort;
  opt.num_sort_workers = 2;
  FrequencyEstimator fe(opt);
  fe.ObserveBatch(data);
  fe.Flush();
  const PipelineCosts& costs = fe.costs();
  EXPECT_GT(costs.pipelined_batches, 0u);
  EXPECT_GT(costs.sort_wall_seconds, 0.0);
  EXPECT_GT(costs.drain_wall_seconds, 0.0);
  EXPECT_GE(costs.ingest_stall_seconds, 0.0);

  // Serial mode leaves the pipeline fields untouched.
  opt.num_sort_workers = 1;
  FrequencyEstimator serial(opt);
  serial.ObserveBatch(data);
  serial.Flush();
  EXPECT_EQ(serial.costs().pipelined_batches, 0u);
  EXPECT_EQ(serial.costs().sort_wall_seconds, 0.0);
}

TEST(PipelineDeterminismTest, BackpressureCapStillDeterministic) {
  const auto data = ZipfStream(6000, 7);
  Options opt;
  opt.epsilon = 0.01;
  opt.backend = Backend::kCpuQuicksort;

  opt.num_sort_workers = 1;
  const Snapshot serial = RunMiner(opt, data);

  opt.num_sort_workers = 4;
  opt.max_windows_in_flight = 4;  // one batch in flight: fully serialized flow
  const Snapshot pipelined = RunMiner(opt, data);
  EXPECT_EQ(pipelined, serial);
}

TEST(PipelineShutdownTest, DestructionFlushesInFlightBatchesCleanly) {
  // Destroying a pipelined estimator with batches still in flight (no
  // Flush) must join all threads without deadlock, crash, or leak (TSan/
  // ASan-observable). Queries are deliberately skipped.
  const auto data = ZipfStream(10000, 8);
  for (int workers : {2, 8}) {
    Options opt;
    opt.epsilon = 0.005;
    opt.backend = Backend::kCpuStdSort;
    opt.num_sort_workers = workers;
    QuantileEstimator qe(opt);
    qe.ObserveBatch(data);
    // ~50 batches were submitted; destructor runs with work in flight.
  }
  SUCCEED();
}

TEST(PipelineShutdownTest, WaitIdleOnEmptyPipelineReturnsImmediately) {
  Options opt;
  opt.epsilon = 0.01;
  opt.num_sort_workers = 2;
  opt.backend = Backend::kCpuStdSort;
  FrequencyEstimator fe(opt);
  fe.Flush();                                // nothing buffered
  EXPECT_EQ(fe.processed_length(), 0u);      // queries sync against idle pipeline
  EXPECT_TRUE(fe.HeavyHitters(0.01).items.empty());
  EXPECT_EQ(fe.costs().pipelined_batches, 0u);
}

TEST(PipelineObservabilityTest, CountersBitIdenticalAcrossWorkerCounts) {
  // The metrics determinism contract (docs/OBSERVABILITY.md): counters and
  // histograms record operation counts, so their merged totals are
  // bit-identical between serial and pipelined execution — even though the
  // pipelined run shards them across 8 worker threads plus ingest and drain.
  const auto data = ZipfStream(20000, 9);
  auto run = [&](int workers) {
    obs::MetricsRegistry metrics;
    Options opt;
    opt.epsilon = 0.005;
    opt.backend = Backend::kGpuPbsn;
    opt.num_sort_workers = workers;
    opt.obs.metrics = &metrics;
    StreamMiner miner(opt);
    miner.ObserveBatch(data);
    miner.Flush();
    (void)miner.frequencies().HeavyHitters(0.02);
    (void)miner.quantiles().Quantile(0.5);
    return metrics.Snapshot();
  };

  const obs::MetricsSnapshot serial = run(1);
  const obs::MetricsSnapshot pipelined = run(8);

  ASSERT_FALSE(serial.counters.empty());
  EXPECT_EQ(pipelined.counters, serial.counters);
  ASSERT_FALSE(serial.histograms.empty());
  ASSERT_EQ(pipelined.histograms.size(), serial.histograms.size());
  for (std::size_t i = 0; i < serial.histograms.size(); ++i) {
    EXPECT_EQ(pipelined.histograms[i].name, serial.histograms[i].name);
    EXPECT_EQ(pipelined.histograms[i].counts, serial.histograms[i].counts) << i;
    EXPECT_EQ(pipelined.histograms[i].sum, serial.histograms[i].sum) << i;
  }
  // Gauges (wall-clock readings) carry no such guarantee — only their names.
}

// Direct SortPipeline exercise: drain order must equal submission order even
// with many workers racing, and every window must come back sorted.
TEST(SortPipelineTest, DrainsInSubmissionOrderAndSortsEveryWindow) {
  constexpr int kWorkers = 4;
  constexpr std::uint64_t kWindow = 64;
  constexpr int kBatches = 50;

  std::vector<sort::StdSortSorter> sorters(
      static_cast<std::size_t>(kWorkers),
      sort::StdSortSorter(hwmodel::kPentium4_3400));
  std::vector<sort::Sorter*> sorter_ptrs;
  for (auto& s : sorters) sorter_ptrs.push_back(&s);

  std::vector<float> drained_markers;  // first element of each drained batch
  std::uint64_t drained_elements = 0;
  bool all_sorted = true;
  stream::PipelineConfig config;
  config.window_size = kWindow;
  stream::SortPipeline pipeline(
      config, sorter_ptrs,
      [&](std::vector<float>&& batch, const sort::SortRunInfo& run,
          std::uint64_t) {
        // Batches are marked by their first window's minimum: batch i holds
        // values in [i*1000, i*1000 + size).
        drained_markers.push_back(batch.front());
        drained_elements += batch.size();
        for (std::size_t off = 0; off < batch.size(); off += kWindow) {
          const std::size_t end = std::min(batch.size(), off + kWindow);
          for (std::size_t j = off + 1; j < end; ++j) {
            if (batch[j - 1] > batch[j]) all_sorted = false;
          }
        }
        EXPECT_GT(run.comparisons, 0u);
        return core::Status::Ok();
      });

  std::uint64_t submitted_elements = 0;
  for (int b = 0; b < kBatches; ++b) {
    // Descending input so sorting has to do real work; size varies so the
    // final window of most batches is partial.
    const std::size_t size = 3 * kWindow + static_cast<std::size_t>(b % 17);
    std::vector<float> batch(size);
    for (std::size_t j = 0; j < size; ++j) {
      batch[j] = static_cast<float>(b * 1000 + (size - 1 - j));
    }
    submitted_elements += size;
    pipeline.Submit(std::move(batch));
  }
  pipeline.WaitIdle();

  ASSERT_EQ(drained_markers.size(), static_cast<std::size_t>(kBatches));
  for (int b = 0; b < kBatches; ++b) {
    // After per-window sorting, the batch front is the first window's
    // minimum: the descending fill put values [2*kWindow + b%17, ...) there.
    const float expected =
        static_cast<float>(b * 1000 + 2 * kWindow + static_cast<std::uint64_t>(b % 17));
    EXPECT_EQ(drained_markers[static_cast<std::size_t>(b)], expected)
        << "batch drained out of order";
  }
  EXPECT_TRUE(all_sorted);
  EXPECT_EQ(drained_elements, submitted_elements);
  EXPECT_EQ(pipeline.stats().batches, static_cast<std::uint64_t>(kBatches));
}

TEST(SortPipelineTest, WindowBatcherTakeBufferMovesAndResets) {
  stream::WindowBatcher batcher(4, 2);
  for (int i = 0; i < 7; ++i) EXPECT_FALSE(batcher.Push(static_cast<float>(i)));
  EXPECT_TRUE(batcher.Push(7.0f));
  std::vector<float> taken = batcher.TakeBuffer();
  EXPECT_EQ(taken.size(), 8u);
  EXPECT_TRUE(batcher.empty());
  // The batcher is immediately reusable.
  for (int i = 0; i < 3; ++i) batcher.Push(static_cast<float>(i));
  EXPECT_EQ(batcher.buffered(), 3u);
}

}  // namespace
}  // namespace streamgpu::core
