// Tests for cost-model backend planning: SortPlanner selection under forced
// cost-model inputs (satellite: "forced cost-model inputs select the
// expected backend"), the simulated-2005 objective's reproduction of the
// paper's GPU/CPU crossover (§4.5), PlannedSorter's per-run dispatch, and
// the pipeline-level guarantee that mixed per-window backend choices still
// yield bit-identical estimator reports across backends and worker counts.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/frequency_estimator.h"
#include "core/options.h"
#include "core/quantile_estimator.h"
#include "hwmodel/calibration.h"
#include "hwmodel/hardware_profiles.h"
#include "hwmodel/sort_planner.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "sort/planned.h"
#include "sort/radix_sort.h"
#include "sort/sample_sort.h"

namespace streamgpu {
namespace {

using hwmodel::PlanObjective;
using hwmodel::SortBackend;
using hwmodel::SortPlanner;
using hwmodel::SortPlannerConfig;

/// Config with the calibration probe pinned, so every expectation below is a
/// pure function of the constants and machine-independent.
SortPlannerConfig PinnedConfig() {
  SortPlannerConfig config;
  config.memcpy_ns_per_byte = 1.0;
  return config;
}

const std::vector<SortBackend> kAllHostCandidates = {
    SortBackend::kGpuPbsn, SortBackend::kSampleSort,
    SortBackend::kCpuRadixMerge, SortBackend::kCpuQuicksort};

TEST(SortPlannerTest, HostObjectiveDefaultsPickDistributionSorts) {
  SortPlanner planner(PinnedConfig(), PlanObjective::kHostWall,
                      kAllHostCandidates);
  // Small windows: sample sort is structurally skipped (below
  // sample_min_keys) and the radix passes' flat cost beats both PBSN's
  // log^2 growth and the comparison sorts' per-log cost.
  EXPECT_EQ(planner.Choose(4096), SortBackend::kCpuRadixMerge);
  EXPECT_EQ(planner.Choose(1u << 16), SortBackend::kCpuRadixMerge);
  // One radix chunk exactly: no merge term yet, radix still wins.
  EXPECT_EQ(planner.Choose(1u << 18), SortBackend::kCpuRadixMerge);
  // Past the chunk size the radix/merge spill+merge terms kick in and
  // sample sort's cache-resident buckets take over (docs/COST_MODEL.md
  // works this example).
  EXPECT_EQ(planner.Choose(1u << 20), SortBackend::kSampleSort);
}

TEST(SortPlannerTest, ForcedConstantsSelectEachBackend) {
  // Forcing one backend's constants to ~zero must make the planner pick it;
  // this is the satellite's "forced cost-model inputs select the expected
  // backend" requirement, exercised per candidate.
  {
    SortPlannerConfig config = PinnedConfig();
    config.pbsn_rel_per_step = 1e-6;
    SortPlanner planner(config, PlanObjective::kHostWall, kAllHostCandidates);
    EXPECT_EQ(planner.Choose(1u << 20), SortBackend::kGpuPbsn);
  }
  {
    SortPlannerConfig config = PinnedConfig();
    config.quicksort_rel_per_log = 1e-6;
    SortPlanner planner(config, PlanObjective::kHostWall, kAllHostCandidates);
    EXPECT_EQ(planner.Choose(1u << 20), SortBackend::kCpuQuicksort);
  }
  {
    SortPlannerConfig config = PinnedConfig();
    config.sample_rel_base = 1e-6;
    config.sample_rel_per_depth = 1e-6;
    SortPlanner planner(config, PlanObjective::kHostWall, kAllHostCandidates);
    EXPECT_EQ(planner.Choose(1u << 20), SortBackend::kSampleSort);
    // ...but never below the structural floor where sample sort degenerates.
    EXPECT_NE(planner.Choose(1000), SortBackend::kSampleSort);
  }
  {
    SortPlannerConfig config = PinnedConfig();
    config.radix_rel_base = 1e-6;
    config.radix_rel_spill = 1e-6;
    config.radix_rel_per_merge_level = 1e-6;
    SortPlanner planner(config, PlanObjective::kHostWall, kAllHostCandidates);
    EXPECT_EQ(planner.Choose(1u << 20), SortBackend::kCpuRadixMerge);
  }
}

TEST(SortPlannerTest, CalibrationScalesPredictionsButNotChoice) {
  // memcpy_ns_per_byte is a common factor of every host prediction, so it
  // rescales ns/key without reordering backends.
  SortPlannerConfig slow = PinnedConfig();
  slow.memcpy_ns_per_byte = 4.0;
  SortPlanner fast_machine(PinnedConfig(), PlanObjective::kHostWall,
                           kAllHostCandidates);
  SortPlanner slow_machine(slow, PlanObjective::kHostWall, kAllHostCandidates);
  for (std::uint64_t n : {std::uint64_t{4096}, std::uint64_t{1} << 20}) {
    EXPECT_EQ(fast_machine.Choose(n), slow_machine.Choose(n)) << n;
    EXPECT_DOUBLE_EQ(
        4.0 * fast_machine.PredictHostNsPerKey(SortBackend::kCpuRadixMerge, n),
        slow_machine.PredictHostNsPerKey(SortBackend::kCpuRadixMerge, n));
  }
}

TEST(SortPlannerTest, Simulated2005ObjectiveReproducesPaperCrossover) {
  // Under the paper's cost models the GPU PBSN sort overtakes CPU quicksort
  // around 16K keys (§4.5): small windows stay on the CPU, large windows go
  // to the GPU.
  SortPlanner planner(PinnedConfig(), PlanObjective::kSimulated2005,
                      {SortBackend::kGpuPbsn, SortBackend::kCpuQuicksort});
  EXPECT_EQ(planner.Choose(1u << 12), SortBackend::kCpuQuicksort);
  EXPECT_EQ(planner.Choose(1u << 17), SortBackend::kGpuPbsn);
  EXPECT_EQ(planner.Choose(1u << 20), SortBackend::kGpuPbsn);
  // The crossover itself lands in the paper's neighborhood: somewhere
  // between 4K and 128K keys the order flips, monotonically.
  bool gpu_seen = false;
  for (std::uint64_t n = 1u << 12; n <= (1u << 20); n <<= 1) {
    const bool gpu = planner.Choose(n) == SortBackend::kGpuPbsn;
    if (gpu_seen) {
      EXPECT_TRUE(gpu) << "choice flipped back to CPU at n=" << n;
    }
    gpu_seen = gpu_seen || gpu;
  }
  EXPECT_TRUE(gpu_seen);
}

TEST(SortPlannerTest, EdgeCasesAreDeterministic) {
  // Empty candidate list falls back to std::sort; n == 0 returns the first
  // candidate; ties break toward the earlier candidate.
  SortPlanner empty(PinnedConfig(), PlanObjective::kHostWall, {});
  EXPECT_EQ(empty.Choose(1u << 20), SortBackend::kCpuStdSort);
  SortPlanner planner(PinnedConfig(), PlanObjective::kHostWall,
                      kAllHostCandidates);
  EXPECT_EQ(planner.Choose(0), kAllHostCandidates.front());
  // Identical candidates listed twice: the first instance wins.
  SortPlanner dup(PinnedConfig(), PlanObjective::kHostWall,
                  {SortBackend::kCpuRadixMerge, SortBackend::kCpuRadixMerge});
  EXPECT_EQ(dup.Choose(1u << 16), SortBackend::kCpuRadixMerge);
}

TEST(CalibrationTest, ProbeIsPositiveAndCached) {
  const double a = hwmodel::CachedMemcpyNsPerByte();
  const double b = hwmodel::CachedMemcpyNsPerByte();
  EXPECT_GT(a, 0.0);
  EXPECT_EQ(a, b);  // one probe per process, byte-identical thereafter
}

// --- PlannedSorter dispatch -------------------------------------------------

std::vector<float> RandomData(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1000.0f, 1000.0f);
  std::vector<float> data(n);
  for (float& v : data) v = dist(rng);
  return data;
}

std::uint64_t CounterValue(const obs::MetricsSnapshot& snap,
                           const std::string& name) {
  for (const auto& [counter_name, value] : snap.counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

TEST(PlannedSorterTest, DispatchesPerRunSizeAndCountsChoices) {
  // Two candidates with a known size split under the default constants:
  // radix below the chunk size, sample sort above it. A mixed batch must
  // route each run to its planned backend, sort both correctly, and bump the
  // per-backend choice counters.
  SortPlanner planner(PinnedConfig(), PlanObjective::kHostWall,
                      {SortBackend::kSampleSort, SortBackend::kCpuRadixMerge});
  sort::SampleSortSorter sample(hwmodel::kPentium4_3400);
  sort::RadixMergeSorter radix(hwmodel::kPentium4_3400);
  obs::MetricsRegistry metrics;
  obs::Observability obs;
  obs.metrics = &metrics;
  sort::PlannedSorter sorter(
      &planner,
      {{SortBackend::kSampleSort, &sample},
       {SortBackend::kCpuRadixMerge, &radix}},
      obs, "sort.");

  std::vector<float> small = RandomData(4096, 1);
  std::vector<float> large = RandomData(std::size_t{1} << 20, 2);
  std::vector<float> small_expected = small;
  std::vector<float> large_expected = large;
  std::sort(small_expected.begin(), small_expected.end());
  std::sort(large_expected.begin(), large_expected.end());

  std::vector<std::span<float>> runs = {std::span<float>(small),
                                        std::span<float>(large)};
  sorter.SortRuns(runs);
  EXPECT_EQ(small, small_expected);
  EXPECT_EQ(large, large_expected);
  // Aggregate run info covers both dispatched groups: the sample-sorted run
  // contributes classification comparisons, both contribute simulated time.
  EXPECT_GT(sorter.last_run().comparisons, 0u);
  EXPECT_GT(sorter.last_run().simulated_seconds, 0.0);

  const obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(CounterValue(snap, "sort.planner.chosen.cpu-radix"), 1u);
  EXPECT_EQ(CounterValue(snap, "sort.planner.chosen.sample"), 1u);

  // Single-run Sort() reports the choice for that run.
  sorter.Sort(small);
  EXPECT_EQ(sorter.last_choice(), SortBackend::kCpuRadixMerge);
  sorter.Sort(large);
  EXPECT_EQ(sorter.last_choice(), SortBackend::kSampleSort);
}

// --- Pipeline bit-identity across backends and worker counts ---------------

/// Mixed-magnitude stream with heavy hitters, negative zeros, and repeated
/// values — valid float32 input for every backend when gpu_format is
/// kFloat32.
std::vector<float> TestStream(std::size_t n) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<float> uniform(-500.0f, 500.0f);
  std::vector<float> stream(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 7 == 0) {
      stream[i] = 125.0f;  // heavy hitter, ~14%
    } else if (i % 11 == 0) {
      stream[i] = -0.25f;  // second hitter, ~8%
    } else if (i % 97 == 0) {
      stream[i] = -0.0f;  // negative zero: ordering must stay canonical
    } else {
      stream[i] = uniform(rng);
    }
  }
  return stream;
}

core::Options PipelineOptions(core::Backend backend, int workers) {
  core::Options opt;
  opt.epsilon = 0.005;
  opt.backend = backend;
  // Cross-backend comparison requires the full-precision GPU path: with the
  // default kFloat16 the GPU backends quantize at ingest and legitimately
  // diverge from the CPU backends (see core::Backend's doc comment).
  opt.gpu_format = gpu::Format::kFloat32;
  // Pin the calibration input so the kAuto plan is machine-independent.
  opt.planner.memcpy_ns_per_byte = 1.0;
  opt.num_sort_workers = workers;
  return opt;
}

TEST(PlannerPipelineTest, ReportsBitIdenticalAcrossBackendsAndWorkers) {
  const std::vector<float> stream = TestStream(30000);
  const core::Backend backends[] = {
      core::Backend::kGpuPbsn, core::Backend::kCpuQuicksort,
      core::Backend::kCpuRadixMerge, core::Backend::kSampleSort,
      core::Backend::kAuto};

  std::vector<core::FrequencyReport> freq_reports;
  std::vector<float> medians;
  for (core::Backend backend : backends) {
    for (int workers : {1, 4}) {
      {
        core::FrequencyEstimator fe(PipelineOptions(backend, workers));
        ASSERT_TRUE(fe.ObserveBatch(stream).ok());
        ASSERT_TRUE(fe.Flush().ok());
        freq_reports.push_back(fe.HeavyHitters(0.02));
      }
      {
        core::QuantileEstimator qe(PipelineOptions(backend, workers));
        ASSERT_TRUE(qe.ObserveBatch(stream).ok());
        ASSERT_TRUE(qe.Flush().ok());
        medians.push_back(qe.Quantile(0.5).value);
      }
    }
  }
  for (std::size_t i = 1; i < freq_reports.size(); ++i) {
    EXPECT_EQ(freq_reports[i], freq_reports[0])
        << "frequency report diverged at configuration " << i;
  }
  for (std::size_t i = 1; i < medians.size(); ++i) {
    // Bit-level equality, not float ==: -0.0 vs +0.0 must also agree.
    EXPECT_EQ(0, std::memcmp(&medians[i], &medians[0], sizeof(float)))
        << "median diverged at configuration " << i;
  }
}

TEST(PlannerPipelineTest, AutoWindowSizesSpanBackendChoices) {
  // A window size past the radix chunk makes kAuto plan sample sort while
  // the small default plans radix — both must produce valid estimators.
  core::Options opt = PipelineOptions(core::Backend::kAuto, 1);
  opt.epsilon = 0.01;
  opt.window_size = 1u << 12;
  core::QuantileEstimator qe(opt);
  const std::vector<float> stream = TestStream(3 * (1u << 12));
  ASSERT_TRUE(qe.ObserveBatch(stream).ok());
  ASSERT_TRUE(qe.Flush().ok());
  const float median = qe.Quantile(0.5).value;
  EXPECT_GE(median, -500.0f);
  EXPECT_LE(median, 500.0f);
}

}  // namespace
}  // namespace streamgpu
