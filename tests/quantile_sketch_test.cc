// Property tests for the quantile machinery: Greenwald-Khanna summaries
// (sketch/gk_summary.h) and the exponential histogram of summaries
// (sketch/exponential_histogram.h, §5.2).

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/exact.h"
#include "sketch/exponential_histogram.h"
#include "sketch/gk_summary.h"
#include "sketch/kll.h"

namespace streamgpu::sketch {
namespace {

// Checks that `value` answers a rank-r query over `sorted` within
// `allowed` ranks (using 1-based ranks; duplicates give the value a rank
// interval).
::testing::AssertionResult RankWithin(const std::vector<float>& sorted, float value,
                                      double target_rank, double allowed) {
  const auto [lo0, hi0] = ExactRankRange(sorted, value);
  const double lo = static_cast<double>(lo0) + 1;  // 1-based
  const double hi = static_cast<double>(hi0) + 1;
  if (lo - allowed <= target_rank && target_rank <= hi + allowed) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "value " << value << " has rank range [" << lo << "," << hi
         << "], target " << target_rank << " allowed +-" << allowed;
}

std::vector<float> RandomValues(std::size_t n, unsigned seed, int domain = 0) {
  std::mt19937 rng(seed);
  std::vector<float> v(n);
  if (domain > 0) {
    std::uniform_int_distribution<int> d(0, domain - 1);
    for (float& x : v) x = static_cast<float>(d(rng));
  } else {
    std::uniform_real_distribution<float> d(0.0f, 1e6f);
    for (float& x : v) x = d(rng);
  }
  return v;
}

// --- GkSummary::FromSorted ---

TEST(GkFromSortedTest, ExactWhenStepIsOne) {
  std::vector<float> w{1, 2, 3, 4, 5};
  const auto s = GkSummary::FromSorted(w, 0.01);  // step = max(1, 0) = 1
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.epsilon(), 0.0);
  EXPECT_EQ(s.count(), 5u);
  for (std::uint64_t r = 1; r <= 5; ++r) {
    EXPECT_EQ(s.QueryRank(r), w[r - 1]);
  }
}

TEST(GkFromSortedTest, SamplingRespectsTargetEpsilon) {
  auto w = RandomValues(10000, 1);
  std::sort(w.begin(), w.end());
  for (double eps : {0.001, 0.01, 0.05, 0.2}) {
    const auto s = GkSummary::FromSorted(w, eps);
    EXPECT_LE(s.epsilon(), eps);
    // Space ~ 1/(2 eps) + 2.
    EXPECT_LE(s.size(), static_cast<std::size_t>(1.0 / (2.0 * eps)) + 3) << eps;
    // Every rank is answerable within eps * n.
    const double allowed = eps * 10000.0 + 1;
    for (std::uint64_t r = 1; r <= 10000; r += 97) {
      EXPECT_TRUE(RankWithin(w, s.QueryRank(r), static_cast<double>(r), allowed));
    }
  }
}

TEST(GkFromSortedTest, FirstAndLastRanksPresent) {
  auto w = RandomValues(1000, 2);
  std::sort(w.begin(), w.end());
  const auto s = GkSummary::FromSorted(w, 0.1);
  EXPECT_EQ(s.tuples().front().rmin, 1u);
  EXPECT_EQ(s.tuples().back().rmax, 1000u);
}

TEST(GkFromSortedTest, EmptyWindow) {
  const auto s = GkSummary::FromSorted({}, 0.1);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
}

// --- Rank-bound soundness: rmin/rmax must always bracket a realizable ---
// --- rank of the tuple's value.                                        ---

void CheckTupleSoundness(const GkSummary& s, const std::vector<float>& sorted) {
  for (const GkTuple& t : s.tuples()) {
    const auto [lo0, hi0] = ExactRankRange(sorted, t.value);
    EXPECT_LE(t.rmin, hi0 + 1) << "rmin beyond the value's highest rank for " << t.value;
    EXPECT_GE(t.rmax, lo0 + 1) << "rmax below the value's lowest rank for " << t.value;
    EXPECT_LE(t.rmin, t.rmax);
    EXPECT_GE(t.rmin, 1u);
    EXPECT_LE(t.rmax, s.count());
  }
}

struct MergeCase {
  std::size_t na;
  std::size_t nb;
  int domain;  // 0 = continuous
  double eps;
};

class GkMergeProperty : public ::testing::TestWithParam<MergeCase> {};

TEST_P(GkMergeProperty, MergedSummaryAnswersWithinEpsilon) {
  const MergeCase& p = GetParam();
  auto a = RandomValues(p.na, 31, p.domain);
  auto b = RandomValues(p.nb, 32, p.domain);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const GkSummary sa = GkSummary::FromSorted(a, p.eps);
  const GkSummary sb = GkSummary::FromSorted(b, p.eps);
  const GkSummary merged = GkSummary::Merge(sa, sb);

  std::vector<float> all;
  all.insert(all.end(), a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end());

  ASSERT_EQ(merged.count(), all.size());
  EXPECT_LE(merged.epsilon(), p.eps);
  CheckTupleSoundness(merged, all);

  const double allowed = merged.epsilon() * static_cast<double>(all.size()) + 1;
  for (double phi : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double target = std::ceil(phi * static_cast<double>(all.size()));
    EXPECT_TRUE(RankWithin(all, merged.Query(phi), target, allowed)) << "phi=" << phi;
  }
}

TEST_P(GkMergeProperty, PruneKeepsEpsilonPlusHalfOverB) {
  const MergeCase& p = GetParam();
  auto a = RandomValues(p.na, 41, p.domain);
  auto b = RandomValues(p.nb, 42, p.domain);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  GkSummary merged =
      GkSummary::Merge(GkSummary::FromSorted(a, p.eps), GkSummary::FromSorted(b, p.eps));

  const std::size_t kB = 20;
  const GkSummary pruned = merged.Prune(kB);
  EXPECT_LE(pruned.size(), kB + 1);
  EXPECT_LE(pruned.epsilon(), merged.epsilon() + 1.0 / (2.0 * kB) + 1e-12);

  std::vector<float> all;
  all.insert(all.end(), a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end());
  CheckTupleSoundness(pruned, all);

  const double allowed = pruned.epsilon() * static_cast<double>(all.size()) + 1;
  for (double phi : {0.05, 0.3, 0.5, 0.8, 0.95}) {
    const double target = std::ceil(phi * static_cast<double>(all.size()));
    EXPECT_TRUE(RankWithin(all, pruned.Query(phi), target, allowed)) << "phi=" << phi;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GkMergeProperty,
    ::testing::Values(MergeCase{1000, 1000, 0, 0.05}, MergeCase{1000, 1000, 10, 0.05},
                      MergeCase{5000, 100, 0, 0.02}, MergeCase{100, 5000, 7, 0.02},
                      MergeCase{2048, 2048, 3, 0.01}, MergeCase{777, 1234, 50, 0.05}),
    [](const ::testing::TestParamInfo<MergeCase>& info) {
      return "na" + std::to_string(info.param.na) + "_nb" + std::to_string(info.param.nb) +
             "_dom" + std::to_string(info.param.domain) + "_eps" +
             std::to_string(static_cast<int>(1.0 / info.param.eps));
    });

TEST(GkMergeTest, MergeWithEmptyIsIdentity) {
  auto a = RandomValues(100, 51);
  std::sort(a.begin(), a.end());
  const GkSummary s = GkSummary::FromSorted(a, 0.1);
  const GkSummary e;
  EXPECT_EQ(GkSummary::Merge(s, e).count(), 100u);
  EXPECT_EQ(GkSummary::Merge(e, s).count(), 100u);
  EXPECT_EQ(GkSummary::Merge(e, e).count(), 0u);
}

TEST(GkMergeTest, ChainOfMergesStaysTightOnDuplicates) {
  // Regression: merging many summaries of heavily duplicated data must not
  // blow up rank intervals (requires a consistent tie order).
  std::mt19937 rng(61);
  std::uniform_int_distribution<int> d(0, 4);  // only five distinct values
  GkSummary acc;
  std::vector<float> all;
  for (int block = 0; block < 50; ++block) {
    std::vector<float> w(200);
    for (float& v : w) v = static_cast<float>(d(rng));
    all.insert(all.end(), w.begin(), w.end());
    std::sort(w.begin(), w.end());
    acc = GkSummary::Merge(acc, GkSummary::FromSorted(w, 0.02));
  }
  std::sort(all.begin(), all.end());
  const double allowed = acc.epsilon() * static_cast<double>(all.size()) + 1;
  for (double phi : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double target = std::ceil(phi * static_cast<double>(all.size()));
    EXPECT_TRUE(RankWithin(all, acc.Query(phi), target, allowed)) << phi;
  }
}

TEST(GkMergeTest, MergeOrderDoesNotBreakGuarantees) {
  // ((a+b)+c) and (a+(b+c)) need not be identical summaries, but both must
  // answer every query within epsilon of truth.
  std::mt19937 rng(62);
  std::uniform_int_distribution<int> d(0, 30);
  std::array<std::vector<float>, 3> parts;
  std::vector<float> all;
  for (auto& part : parts) {
    part.resize(1500);
    for (float& v : part) v = static_cast<float>(d(rng));
    all.insert(all.end(), part.begin(), part.end());
    std::sort(part.begin(), part.end());
  }
  std::sort(all.begin(), all.end());

  const double eps = 0.02;
  const GkSummary a = GkSummary::FromSorted(parts[0], eps);
  const GkSummary b = GkSummary::FromSorted(parts[1], eps);
  const GkSummary c = GkSummary::FromSorted(parts[2], eps);
  const GkSummary left = GkSummary::Merge(GkSummary::Merge(a, b), c);
  const GkSummary right = GkSummary::Merge(a, GkSummary::Merge(b, c));

  const double allowed = eps * static_cast<double>(all.size()) + 1;
  for (const GkSummary* s : {&left, &right}) {
    ASSERT_EQ(s->count(), all.size());
    for (double phi : {0.1, 0.5, 0.9}) {
      const double target = std::ceil(phi * static_cast<double>(all.size()));
      EXPECT_TRUE(RankWithin(all, s->Query(phi), target, allowed)) << phi;
    }
  }
}

TEST(GkPruneTest, SmallSummaryIsUntouched) {
  auto a = RandomValues(100, 52);
  std::sort(a.begin(), a.end());
  const GkSummary s = GkSummary::FromSorted(a, 0.2);
  const GkSummary pruned = s.Prune(1000);
  EXPECT_EQ(pruned.size(), s.size());
  EXPECT_EQ(pruned.epsilon(), s.epsilon());
}

// --- Exponential histogram (§5.2). ---

struct EhCase {
  double eps;
  std::uint64_t window;
  std::size_t n;
  int domain;
};

class EhProperty : public ::testing::TestWithParam<EhCase> {};

TEST_P(EhProperty, QueriesWithinEpsilon) {
  const EhCase& p = GetParam();
  EhQuantileSummary eh(p.eps, p.window, p.n);
  auto stream = RandomValues(p.n, 71, p.domain);
  std::vector<float> sorted;
  for (std::size_t off = 0; off < stream.size(); off += p.window) {
    const std::size_t len = std::min<std::size_t>(p.window, stream.size() - off);
    std::vector<float> w(stream.begin() + off, stream.begin() + off + len);
    std::sort(w.begin(), w.end());
    eh.AddWindowSummary(GkSummary::FromSorted(w, p.eps / 2.0));
  }
  sorted = stream;
  std::sort(sorted.begin(), sorted.end());
  ASSERT_EQ(eh.count(), p.n);

  const double allowed = p.eps * static_cast<double>(p.n) + 1;
  for (double phi : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double target = std::ceil(phi * static_cast<double>(p.n));
    EXPECT_TRUE(RankWithin(sorted, eh.Query(phi), target, allowed)) << phi;
  }
}

TEST_P(EhProperty, AtMostOneBucketPerLevel) {
  const EhCase& p = GetParam();
  EhQuantileSummary eh(p.eps, p.window, p.n);
  auto stream = RandomValues(p.n, 72, p.domain);
  for (std::size_t off = 0; off < stream.size(); off += p.window) {
    const std::size_t len = std::min<std::size_t>(p.window, stream.size() - off);
    std::vector<float> w(stream.begin() + off, stream.begin() + off + len);
    std::sort(w.begin(), w.end());
    eh.AddWindowSummary(GkSummary::FromSorted(w, p.eps / 2.0));
    // Canonical binary-counter state: ids within the provisioned levels.
    EXPECT_LE(eh.MaxBucketId(), eh.levels() + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EhProperty,
    ::testing::Values(EhCase{0.02, 500, 50000, 0}, EhCase{0.02, 500, 50000, 20},
                      EhCase{0.01, 1000, 100000, 0}, EhCase{0.05, 100, 20000, 5},
                      EhCase{0.01, 1000, 97531, 0}),  // non-multiple length
    [](const ::testing::TestParamInfo<EhCase>& info) {
      return "eps" + std::to_string(static_cast<int>(1.0 / info.param.eps)) + "_w" +
             std::to_string(info.param.window) + "_n" + std::to_string(info.param.n) +
             "_dom" + std::to_string(info.param.domain);
    });

TEST(EhTest, LevelBudgetsAreIncreasingAndBelowEpsilon) {
  EhQuantileSummary eh(0.01, 1000, 1000000);
  double prev = 0;
  for (int b = 1; b <= eh.levels(); ++b) {
    const double budget = eh.LevelBudget(b);
    EXPECT_GT(budget, prev);
    EXPECT_LE(budget, 0.01 + 1e-12);
    prev = budget;
  }
}

TEST(EhTest, SpaceStaysBounded) {
  const double eps = 0.02;
  EhQuantileSummary eh(eps, 200, 100000);
  std::mt19937 rng(81);
  std::uniform_real_distribution<float> d(0.0f, 1.0f);
  for (int block = 0; block < 500; ++block) {
    std::vector<float> w(200);
    for (float& v : w) v = d(rng);
    std::sort(w.begin(), w.end());
    eh.AddWindowSummary(GkSummary::FromSorted(w, eps / 2.0));
  }
  // Bound: levels * (prune budget + 1) tuples plus slack for unpruned
  // low-level buckets.
  const double cap = static_cast<double>(eh.levels() + 2) *
                     (static_cast<double>(eh.prune_tuples()) + 200.0);
  EXPECT_LE(static_cast<double>(eh.TotalTuples()), cap);
  EXPECT_GT(eh.merge_seconds() + eh.compress_seconds(), 0.0);
}

TEST(EhTest, RejectsTooCoarseWindowSummary) {
  EhQuantileSummary eh(0.01, 1000, 100000);
  std::vector<float> w(1000);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = static_cast<float>(i);
  // A 0.5-approximate summary violates the epsilon/2 requirement.
  EXPECT_DEATH(eh.AddWindowSummary(GkSummary::FromSorted(w, 0.5)), "epsilon/2");
}

// --- KllSketch ---

TEST(KllTest, EmptySketchAnswersZero) {
  KllSketch s(0.01);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Quantile(0.5), 0.0f);
  EXPECT_EQ(s.QueryRank(1), 0.0f);
  EXPECT_EQ(s.rank_error_bound(), 0u);
  EXPECT_EQ(s.summary_size(), 0u);
}

TEST(KllTest, ExactWhileNoCompactionHasRun) {
  KllSketch s(0.25);  // tiny k so this would compact quickly
  std::vector<float> w{5, 1, 3, 2, 4};
  for (float v : w) {
    if (s.compactions() > 0) break;
    s.Observe(v);
  }
  // Before the first compaction the tracked worst case is 0: answers are
  // exact and the honest bound says so.
  if (s.compactions() == 0) {
    EXPECT_EQ(s.worst_case_rank_error(), 0u);
    EXPECT_EQ(s.rank_error_bound(), 0u);
  }
}

TEST(KllTest, AccuracyWithinStatedEpsilonAcrossSweep) {
  for (double eps : {0.05, 0.02, 0.01}) {
    const std::size_t n = 50000;
    auto data = RandomValues(n, 1234);
    KllSketch s(eps);
    for (float v : data) s.Observe(v);
    ASSERT_EQ(s.count(), n);

    std::vector<float> sorted = data;
    std::sort(sorted.begin(), sorted.end());
    const double allowed = static_cast<double>(s.rank_error_bound()) + 1;
    EXPECT_LE(s.rank_error_bound(),
              static_cast<std::uint64_t>(std::ceil(eps * static_cast<double>(n))));
    for (double phi : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
      const double target = std::ceil(phi * static_cast<double>(n));
      EXPECT_TRUE(RankWithin(sorted, s.Quantile(phi), target, allowed))
          << "eps=" << eps << " phi=" << phi;
    }
  }
}

TEST(KllTest, SpaceStaysSublinearAndBeatsNaive) {
  const double eps = 0.01;
  const std::size_t n = 200000;
  KllSketch s(eps);
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> d(0.0f, 1e6f);
  for (std::size_t i = 0; i < n; ++i) s.Observe(d(rng));
  // O(k log(n/k)) items: k = 400 at this epsilon; the whole hierarchy must
  // stay within a small multiple of k, far below the stream length.
  EXPECT_LE(s.summary_size(), 8 * s.k());
  EXPECT_LT(s.summary_size(), n / 50);
  EXPECT_LT(s.num_levels(), 64u);
}

TEST(KllTest, DeterministicAcrossIdenticalRuns) {
  const auto data = RandomValues(30000, 55);
  KllSketch a(0.02), b(0.02);
  for (float v : data) a.Observe(v);
  for (float v : data) b.Observe(v);
  // Same sequence + same seed: bit-identical hierarchy and coin position.
  EXPECT_EQ(a.levels(), b.levels());
  EXPECT_EQ(a.compactions(), b.compactions());
  EXPECT_EQ(a.worst_case_rank_error(), b.worst_case_rank_error());
  for (double phi : {0.1, 0.5, 0.9}) EXPECT_EQ(a.Quantile(phi), b.Quantile(phi));
}

TEST(KllTest, SeedChangesCoinSequenceButNotGuarantee) {
  const auto data = RandomValues(20000, 56);
  KllSketch a(0.02, 1), b(0.02, 2);
  for (float v : data) a.Observe(v);
  for (float v : data) b.Observe(v);
  std::vector<float> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  for (double phi : {0.25, 0.5, 0.75}) {
    const double target = std::ceil(phi * static_cast<double>(data.size()));
    EXPECT_TRUE(RankWithin(sorted, a.Quantile(phi), target,
                           static_cast<double>(a.rank_error_bound()) + 1));
    EXPECT_TRUE(RankWithin(sorted, b.Quantile(phi), target,
                           static_cast<double>(b.rank_error_bound()) + 1));
  }
}

TEST(KllTest, MergeMatchesUnionAndComposesBounds) {
  const auto left = RandomValues(15000, 60);
  const auto right = RandomValues(25000, 61);
  KllSketch a(0.02), b(0.02);
  for (float v : left) a.Observe(v);
  for (float v : right) b.Observe(v);
  const std::uint64_t wa = a.worst_case_rank_error();
  const std::uint64_t wb = b.worst_case_rank_error();

  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.count(), left.size() + right.size());
  // The tracked worst cases add (plus any compactions Merge itself runs).
  EXPECT_GE(a.worst_case_rank_error(), wa + wb);

  std::vector<float> all = left;
  all.insert(all.end(), right.begin(), right.end());
  std::sort(all.begin(), all.end());
  const double allowed = static_cast<double>(a.rank_error_bound()) + 1;
  for (double phi : {0.1, 0.5, 0.9}) {
    const double target = std::ceil(phi * static_cast<double>(all.size()));
    EXPECT_TRUE(RankWithin(all, a.Quantile(phi), target, allowed)) << phi;
  }
}

TEST(KllTest, MergeRejectsEpsilonMismatchAndAcceptsEmpty) {
  KllSketch a(0.02), mismatched(0.05), empty(0.02);
  a.Observe(1.0f);
  mismatched.Observe(2.0f);  // an empty sketch merges as the identity even
                             // across epsilons; a non-empty one must not
  EXPECT_FALSE(a.Merge(mismatched).ok());
  const std::uint64_t before = a.count();
  ASSERT_TRUE(a.Merge(empty).ok());
  EXPECT_EQ(a.count(), before);
}

TEST(KllTest, WeightIsConservedAcrossCompactions) {
  KllSketch s(0.1);
  std::mt19937 rng(9);
  std::uniform_real_distribution<float> d(0.0f, 1.0f);
  for (int i = 0; i < 10000; ++i) s.Observe(d(rng));
  std::uint64_t weighted = 0;
  for (std::size_t h = 0; h < s.num_levels(); ++h) {
    weighted += static_cast<std::uint64_t>(s.levels()[h].size()) << h;
  }
  EXPECT_EQ(weighted, s.count());
  EXPECT_GT(s.compactions(), 0u);
  EXPECT_GT(s.discarded_items(), 0u);
}

TEST(KllTest, SpaceIsSmallerThanChainedGkMerges) {
  // The headline trade: KLL's compaction keeps O(k log(n/k)) items on a
  // merge-heavy stream, while an unpruned GK merge chain grows with the
  // number of windows folded in (one tuple per surviving input tuple).
  const double eps = 0.005;
  const std::size_t kWindows = 100, kWindow = 1000;
  KllSketch kll(eps);
  GkSummary gk;
  std::mt19937 rng(77);
  std::uniform_real_distribution<float> d(0.0f, 1e6f);
  for (std::size_t b = 0; b < kWindows; ++b) {
    std::vector<float> w(kWindow);
    for (float& v : w) v = d(rng);
    for (float v : w) kll.Observe(v);
    std::sort(w.begin(), w.end());
    gk = GkSummary::Merge(gk, GkSummary::FromSorted(w, eps));
  }
  EXPECT_LT(kll.summary_size(), gk.size());
  // And the sketch itself stays within its schedule, independent of n.
  EXPECT_LE(kll.summary_size(), 8 * kll.k());
}

}  // namespace
}  // namespace streamgpu::sketch
