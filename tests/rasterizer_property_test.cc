// Property tests for the rasterizer: the optimized separable path must agree
// with a naive per-pixel bilinear reference on randomized quads, blending
// must be exactly per-channel min/max, and the PBSN comparator quads must
// reproduce the scalar network step for arbitrary geometry parameters.

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "gpu/rasterizer.h"
#include "gpu/surface.h"
#include "sort/pbsn_network.h"

namespace streamgpu::gpu {
namespace {

// Naive reference: full bilinear interpolation at every pixel center.
void ReferenceDrawQuad(const Surface& tex, const Quad& quad, BlendOp op,
                       Surface* target) {
  const Vertex& v0 = quad.vertices[0];
  const Vertex& v1 = quad.vertices[1];
  const Vertex& v2 = quad.vertices[2];
  const Vertex& v3 = quad.vertices[3];
  const float x0 = v0.x, y0 = v0.y, x1 = v2.x, y1 = v2.y;
  for (int y = 0; y < target->height(); ++y) {
    for (int x = 0; x < target->width(); ++x) {
      const float cx = static_cast<float>(x) + 0.5f;
      const float cy = static_cast<float>(y) + 0.5f;
      if (cx < x0 || cx >= x1 || cy < y0 || cy >= y1) continue;
      const float sx = (cx - x0) / (x1 - x0);
      const float sy = (cy - y0) / (y1 - y0);
      const float w00 = (1 - sx) * (1 - sy);
      const float w10 = sx * (1 - sy);
      const float w11 = sx * sy;
      const float w01 = (1 - sx) * sy;
      const float u = w00 * v0.u + w10 * v1.u + w11 * v2.u + w01 * v3.u;
      const float v = w00 * v0.v + w10 * v1.v + w11 * v2.v + w01 * v3.v;
      const int tx = std::clamp(static_cast<int>(std::floor(u)), 0, tex.width() - 1);
      const int ty = std::clamp(static_cast<int>(std::floor(v)), 0, tex.height() - 1);
      for (int c = 0; c < kNumChannels; ++c) {
        target->Set(c, x, y,
                    ApplyBlend(op, target->Get(c, x, y), tex.Get(c, tx, ty)));
      }
    }
  }
}

void RandomizeSurface(Surface* s, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> d(0.0f, 100.0f);
  for (int c = 0; c < kNumChannels; ++c) {
    for (int y = 0; y < s->height(); ++y) {
      for (int x = 0; x < s->width(); ++x) s->Set(c, x, y, d(rng));
    }
  }
}

bool SurfacesEqual(const Surface& a, const Surface& b) {
  for (int c = 0; c < kNumChannels; ++c) {
    for (int y = 0; y < a.height(); ++y) {
      for (int x = 0; x < a.width(); ++x) {
        if (a.Get(c, x, y) != b.Get(c, x, y)) return false;
      }
    }
  }
  return true;
}

class RasterizerRandomQuads : public ::testing::TestWithParam<unsigned> {};

TEST_P(RasterizerRandomQuads, SeparableQuadsMatchReference) {
  // Random axis-aligned integer quads with separable (u(x), v(y)) mappings —
  // the family every paper routine uses — drawn with random blend ops.
  std::mt19937 rng(GetParam());
  const int w = 16;
  const int h = 8;
  Surface tex(w, h, Format::kFloat32);
  RandomizeSurface(&tex, GetParam() * 7 + 1);

  Surface fast(w, h, Format::kFloat32);
  Surface reference(w, h, Format::kFloat32);
  RandomizeSurface(&fast, GetParam() * 7 + 2);
  for (int c = 0; c < kNumChannels; ++c) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) reference.Set(c, x, y, fast.Get(c, x, y));
    }
  }

  std::uniform_int_distribution<int> xs(0, w - 1);
  std::uniform_int_distribution<int> ys(0, h - 1);
  std::uniform_int_distribution<int> us(-4, w + 4);
  std::uniform_int_distribution<int> vs(-4, h + 4);
  std::uniform_int_distribution<int> ops(0, 2);

  for (int trial = 0; trial < 50; ++trial) {
    // Power-of-two extents keep the interpolation weights dyadic, so the
    // separable fast path and the bilinear reference agree bit-exactly.
    const int qx0 = xs(rng);
    int wx = 1;
    while (wx * 2 <= w - qx0 && (rng() & 1) != 0) wx *= 2;
    const int qx1 = qx0 + wx;
    const int qy0 = ys(rng);
    int wy = 1;
    while (wy * 2 <= h - qy0 && (rng() & 1) != 0) wy *= 2;
    const int qy1 = qy0 + wy;
    const float u_left = static_cast<float>(us(rng));
    const float u_right = static_cast<float>(us(rng));
    const float v_top = static_cast<float>(vs(rng));
    const float v_bottom = static_cast<float>(vs(rng));
    const auto op = static_cast<BlendOp>(ops(rng));

    const Quad quad = Quad::Make(
        static_cast<float>(qx0), static_cast<float>(qy0), static_cast<float>(qx1),
        static_cast<float>(qy1),                       //
        u_left, v_top, u_right, v_top,                 //
        u_right, v_bottom, u_left, v_bottom);

    GpuStats stats;
    Rasterizer::DrawQuad(tex, quad, op, &fast, &stats);
    ReferenceDrawQuad(tex, quad, op, &reference);
    ASSERT_TRUE(SurfacesEqual(fast, reference))
        << "trial " << trial << " quad (" << qx0 << "," << qy0 << ")-(" << qx1 << ","
        << qy1 << ") op " << BlendOpName(op);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RasterizerRandomQuads, ::testing::Range(1u, 9u));

TEST(RasterizerPbsnQuadTest, RowBlockQuadsEqualScalarStep) {
  // For every block size B <= W, rendering the paper's min/max row-block
  // quads must equal PbsnStepCpu on the row-major data.
  const int w = 16;
  const int h = 4;
  Surface tex(w, h, Format::kFloat32);
  RandomizeSurface(&tex, 99);

  for (int block = 2; block <= w; block *= 2) {
    // Flatten channel 0 row-major and run the scalar step per row block.
    std::vector<float> expected(static_cast<std::size_t>(w) * h);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) expected[static_cast<std::size_t>(y) * w + x] = tex.Get(0, x, y);
    }
    for (int y = 0; y < h; ++y) {
      std::span<float> row(expected.data() + static_cast<std::size_t>(y) * w, w);
      sort::PbsnStepCpu(row, static_cast<std::size_t>(block));
    }

    Surface fb(w, h, Format::kFloat32);
    GpuStats stats;
    Rasterizer::DrawQuad(tex, Quad::Identity(0, 0, w, h), BlendOp::kReplace, &fb,
                         &stats);
    const auto b = static_cast<float>(block);
    for (int j = 0; j < w / block; ++j) {
      const float off = static_cast<float>(j * block);
      Rasterizer::DrawQuad(tex,
                           Quad::Make(off, 0, off + b / 2, h,      //
                                      off + b, 0, off + b / 2, 0,  //
                                      off + b / 2, h, off + b, h),
                           BlendOp::kMin, &fb, &stats);
      Rasterizer::DrawQuad(tex,
                           Quad::Make(off + b / 2, 0, off + b, h,  //
                                      off + b / 2, 0, off, 0,      //
                                      off, h, off + b / 2, h),
                           BlendOp::kMax, &fb, &stats);
    }
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        ASSERT_EQ(fb.Get(0, x, y), expected[static_cast<std::size_t>(y) * w + x])
            << "block " << block << " pixel (" << x << "," << y << ")";
      }
    }
  }
}

TEST(RasterizerPbsnQuadTest, TallBlockQuadsEqualScalarStep) {
  // For block sizes spanning multiple rows (B > W), the vertical-mirror
  // quads of Routine 4.2 must equal PbsnStepCpu on the row-major data.
  const int w = 8;
  const int h = 8;
  Surface tex(w, h, Format::kFloat32);
  RandomizeSurface(&tex, 101);

  for (int block = 2 * w; block <= w * h; block *= 2) {
    std::vector<float> expected(static_cast<std::size_t>(w) * h);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) expected[static_cast<std::size_t>(y) * w + x] = tex.Get(0, x, y);
    }
    sort::PbsnStepCpu(expected, static_cast<std::size_t>(block));

    Surface fb(w, h, Format::kFloat32);
    GpuStats stats;
    Rasterizer::DrawQuad(tex, Quad::Identity(0, 0, w, h), BlendOp::kReplace, &fb,
                         &stats);
    const int bh = block / w;
    for (int i = 0; i < w * h / block; ++i) {
      const auto r = static_cast<float>(i * bh);
      const auto fbh = static_cast<float>(bh);
      Rasterizer::DrawQuad(tex,
                           Quad::Make(0, r, w, r + fbh / 2,  //
                                      w, r + fbh, 0, r + fbh,  //
                                      0, r + fbh / 2, w, r + fbh / 2),
                           BlendOp::kMin, &fb, &stats);
      Rasterizer::DrawQuad(tex,
                           Quad::Make(0, r + fbh / 2, w, r + fbh,      //
                                      w, r + fbh / 2, 0, r + fbh / 2,  //
                                      0, r, w, r),
                           BlendOp::kMax, &fb, &stats);
    }
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        ASSERT_EQ(fb.Get(0, x, y), expected[static_cast<std::size_t>(y) * w + x])
            << "block " << block << " pixel (" << x << "," << y << ")";
      }
    }
  }
}

}  // namespace
}  // namespace streamgpu::gpu
