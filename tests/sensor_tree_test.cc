// Tests for the sensor-network tree aggregation (sketch/sensor_tree.h) —
// the Greenwald-Khanna [21] setting §5.2 extends.

#include "sketch/sensor_tree.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/exact.h"

namespace streamgpu::sketch {
namespace {

std::vector<std::vector<float>> MakeLeafData(int leaves, std::size_t per_leaf,
                                             unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> d(0.0f, 1e5f);
  std::vector<std::vector<float>> out(leaves);
  for (auto& leaf : out) {
    leaf.resize(per_leaf);
    for (float& v : leaf) v = d(rng);
    std::sort(leaf.begin(), leaf.end());
  }
  return out;
}

std::vector<float> Flatten(const std::vector<std::vector<float>>& leaves) {
  std::vector<float> all;
  for (const auto& leaf : leaves) all.insert(all.end(), leaf.begin(), leaf.end());
  std::sort(all.begin(), all.end());
  return all;
}

struct TreeCase {
  int leaves;
  int fanout;
  std::size_t per_leaf;
  double eps;
};

class SensorTreeProperty : public ::testing::TestWithParam<TreeCase> {};

TEST_P(SensorTreeProperty, RootSummaryWithinEpsilon) {
  const TreeCase& p = GetParam();
  const int height = static_cast<int>(
      std::ceil(std::log(static_cast<double>(p.leaves)) / std::log(p.fanout))) + 1;
  SensorTreeAggregator tree(p.eps, height);
  const auto leaf_data = MakeLeafData(p.leaves, p.per_leaf, 77);
  const GkSummary root = tree.AggregateComplete(leaf_data, p.fanout);

  const auto all = Flatten(leaf_data);
  ASSERT_EQ(root.count(), all.size());
  EXPECT_LE(root.epsilon(), p.eps + 1e-12);

  const double n = static_cast<double>(all.size());
  for (double phi : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const float q = root.Query(phi);
    const auto lo = std::lower_bound(all.begin(), all.end(), q) - all.begin();
    const auto hi = std::upper_bound(all.begin(), all.end(), q) - all.begin();
    const double target = std::ceil(phi * n);
    const double allowed = p.eps * n + 1;
    EXPECT_LE(static_cast<double>(lo) + 1, target + allowed) << phi;
    EXPECT_GE(static_cast<double>(hi), target - allowed) << phi;
  }
}

TEST_P(SensorTreeProperty, CommunicationIsSublinearInData) {
  const TreeCase& p = GetParam();
  const int height = static_cast<int>(
      std::ceil(std::log(static_cast<double>(p.leaves)) / std::log(p.fanout))) + 1;
  SensorTreeAggregator tree(p.eps, height);
  const auto leaf_data = MakeLeafData(p.leaves, p.per_leaf, 78);
  tree.AggregateComplete(leaf_data, p.fanout);

  const double total_observations =
      static_cast<double>(p.leaves) * static_cast<double>(p.per_leaf);
  // Each transmitted summary is O(height/eps) tuples; with interior nodes ~
  // leaves/(fanout-1), traffic stays well below shipping the raw data once
  // the per-leaf volume beats the summary size.
  if (p.per_leaf > 4 * static_cast<std::size_t>(tree.compress_tuples())) {
    EXPECT_LT(static_cast<double>(tree.tuples_transmitted()), total_observations);
  }
  EXPECT_GT(tree.tuples_transmitted(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SensorTreeProperty,
    ::testing::Values(TreeCase{8, 2, 2000, 0.05}, TreeCase{16, 4, 1000, 0.02},
                      TreeCase{27, 3, 500, 0.05}, TreeCase{5, 2, 3000, 0.01},
                      TreeCase{64, 8, 4000, 0.01}),
    [](const ::testing::TestParamInfo<TreeCase>& info) {
      std::string name = "leaves";
      name += std::to_string(info.param.leaves);
      name += "_fan";
      name += std::to_string(info.param.fanout);
      name += "_eps";
      name += std::to_string(static_cast<int>(1.0 / info.param.eps));
      return name;
    });

TEST(SensorTreeTest, LevelBudgetsIncreaseToEpsilon) {
  SensorTreeAggregator tree(0.02, 5);
  double prev = 0;
  for (int i = 0; i <= 5; ++i) {
    const double b = tree.LevelBudget(i);
    EXPECT_GT(b, prev);
    EXPECT_LE(b, 0.02 + 1e-12);
    prev = b;
  }
  EXPECT_DOUBLE_EQ(tree.LevelBudget(0), 0.01);
  EXPECT_DOUBLE_EQ(tree.LevelBudget(5), 0.02);
}

TEST(SensorTreeTest, SingleLeafIsItsOwnRoot) {
  SensorTreeAggregator tree(0.1, 1);
  auto leaf = MakeLeafData(1, 100, 79);
  const GkSummary root = tree.AggregateComplete(leaf, 2);
  EXPECT_EQ(root.count(), 100u);
  EXPECT_EQ(tree.tuples_transmitted(), 0u);
}

TEST(SensorTreeTest, UnevenLeafSizes) {
  SensorTreeAggregator tree(0.05, 3);
  std::vector<std::vector<float>> leaves;
  std::mt19937 rng(80);
  std::uniform_real_distribution<float> d(0.0f, 100.0f);
  for (std::size_t size : {10u, 500u, 3u, 1200u}) {
    std::vector<float> leaf(size);
    for (float& v : leaf) v = d(rng);
    std::sort(leaf.begin(), leaf.end());
    leaves.push_back(std::move(leaf));
  }
  const GkSummary root = tree.AggregateComplete(leaves, 2);
  EXPECT_EQ(root.count(), 1713u);
}

TEST(SensorTreeTest, OverDeepTreeDies) {
  SensorTreeAggregator tree(0.05, 1);  // provisioned for height 1
  auto leaves = MakeLeafData(8, 50, 81);
  EXPECT_DEATH(tree.AggregateComplete(leaves, 2), "deeper than");
}

}  // namespace
}  // namespace streamgpu::sketch
