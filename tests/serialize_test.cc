// Tests for summary serialization (sketch/serialize.h): round trips,
// framing, and rejection of malformed/corrupted input.

#include "sketch/serialize.h"

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace streamgpu::sketch {
namespace {

GkSummary MakeSummary(std::size_t n, double eps, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> d(0.0f, 1e4f);
  std::vector<float> v(n);
  for (float& x : v) x = d(rng);
  std::sort(v.begin(), v.end());
  return GkSummary::FromSorted(v, eps);
}

TEST(SerializeTest, RoundTripPreservesEverything) {
  const GkSummary original = MakeSummary(5000, 0.01, 1);
  std::vector<std::uint8_t> buffer;
  SerializeGkSummary(original, &buffer);
  EXPECT_EQ(buffer.size(), GkSummaryWireSize(original.size()));

  std::span<const std::uint8_t> cursor = buffer;
  GkSummary parsed;
  ASSERT_TRUE(DeserializeGkSummary(&cursor, &parsed));
  EXPECT_TRUE(cursor.empty());
  EXPECT_EQ(parsed.count(), original.count());
  EXPECT_EQ(parsed.epsilon(), original.epsilon());
  EXPECT_EQ(parsed.tuples(), original.tuples());
  for (double phi : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(parsed.Query(phi), original.Query(phi));
  }
}

TEST(SerializeTest, EmptySummaryRoundTrips) {
  const GkSummary empty;
  std::vector<std::uint8_t> buffer;
  SerializeGkSummary(empty, &buffer);
  std::span<const std::uint8_t> cursor = buffer;
  GkSummary parsed = MakeSummary(10, 0.1, 2);  // must be overwritten
  ASSERT_TRUE(DeserializeGkSummary(&cursor, &parsed));
  EXPECT_TRUE(parsed.empty());
  EXPECT_EQ(parsed.count(), 0u);
}

TEST(SerializeTest, SequentialFraming) {
  const GkSummary a = MakeSummary(100, 0.05, 3);
  const GkSummary b = MakeSummary(777, 0.01, 4);
  std::vector<std::uint8_t> buffer;
  SerializeGkSummary(a, &buffer);
  SerializeGkSummary(b, &buffer);

  std::span<const std::uint8_t> cursor = buffer;
  GkSummary pa;
  GkSummary pb;
  ASSERT_TRUE(DeserializeGkSummary(&cursor, &pa));
  ASSERT_TRUE(DeserializeGkSummary(&cursor, &pb));
  EXPECT_TRUE(cursor.empty());
  EXPECT_EQ(pa.count(), a.count());
  EXPECT_EQ(pb.count(), b.count());
}

TEST(SerializeTest, RejectsBadMagicAndTruncation) {
  const GkSummary s = MakeSummary(50, 0.1, 5);
  std::vector<std::uint8_t> buffer;
  SerializeGkSummary(s, &buffer);

  GkSummary parsed;
  // Bad magic.
  {
    auto corrupted = buffer;
    corrupted[0] ^= 0xFF;
    std::span<const std::uint8_t> cursor = corrupted;
    EXPECT_FALSE(DeserializeGkSummary(&cursor, &parsed));
  }
  // Every truncation point fails cleanly.
  for (std::size_t cut = 0; cut < buffer.size(); cut += 3) {
    std::span<const std::uint8_t> cursor(buffer.data(), cut);
    EXPECT_FALSE(DeserializeGkSummary(&cursor, &parsed)) << "cut=" << cut;
  }
}

TEST(SerializeTest, RejectsInvariantViolations) {
  const GkSummary s = MakeSummary(50, 0.1, 6);
  std::vector<std::uint8_t> buffer;
  SerializeGkSummary(s, &buffer);
  // Corrupt a tuple's rmin (first tuple field region after the header).
  const std::size_t header = 4 + 8 + 8 + 8;
  GkSummary parsed;
  auto corrupted = buffer;
  corrupted[header + sizeof(float)] = 0xFF;  // rmin low byte blown up
  std::span<const std::uint8_t> cursor = corrupted;
  EXPECT_FALSE(DeserializeGkSummary(&cursor, &parsed));
}

TEST(SerializeTest, RejectsHugeLengthField) {
  std::vector<std::uint8_t> buffer;
  SerializeGkSummary(MakeSummary(10, 0.1, 7), &buffer);
  // Blow up the tuple-count field (offset 20..27) to a value the remaining
  // bytes cannot hold; must fail without allocating.
  for (std::size_t i = 20; i < 28; ++i) buffer[i] = 0xFF;
  std::span<const std::uint8_t> cursor = buffer;
  GkSummary parsed;
  EXPECT_FALSE(DeserializeGkSummary(&cursor, &parsed));
}

TEST(FromPartsTest, ValidatesStructure) {
  GkSummary out;
  // Valid.
  EXPECT_TRUE(GkSummary::FromParts({{1.0f, 1, 1}, {2.0f, 2, 3}}, 3, 0.1, &out));
  EXPECT_EQ(out.count(), 3u);
  // Descending values.
  EXPECT_FALSE(GkSummary::FromParts({{2.0f, 1, 1}, {1.0f, 2, 2}}, 2, 0.1, &out));
  // rmin > rmax.
  EXPECT_FALSE(GkSummary::FromParts({{1.0f, 3, 2}}, 3, 0.1, &out));
  // rmax beyond count.
  EXPECT_FALSE(GkSummary::FromParts({{1.0f, 1, 9}}, 3, 0.1, &out));
  // Nonempty tuples with zero count / empty with nonzero count.
  EXPECT_FALSE(GkSummary::FromParts({{1.0f, 1, 1}}, 0, 0.1, &out));
  EXPECT_FALSE(GkSummary::FromParts({}, 5, 0.1, &out));
  // Bad epsilon.
  EXPECT_FALSE(GkSummary::FromParts({{1.0f, 1, 1}}, 1, 1.5, &out));
}

}  // namespace
}  // namespace streamgpu::sketch
