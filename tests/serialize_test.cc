// Tests for the versioned summary wire format (sketch/serialize.h): per-type
// envelope round trips (including empty summaries), back-to-back framing,
// type dispatch via PeekSketchType, the legacy "GKS1" shim, committed golden
// wire files (forward-compat detection), and a malformed-input corpus —
// every rejection returns Status, never aborts.
//
// Regenerate the golden wire files with:
//   STREAMGPU_REGEN_GOLDEN=1 ./serialize_test --gtest_filter='*GoldenWire*'

#include "sketch/serialize.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace streamgpu::sketch {
namespace {

GkSummary MakeGk(std::size_t n, double eps, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> d(0.0f, 1e4f);
  std::vector<float> v(n);
  for (float& x : v) x = d(rng);
  std::sort(v.begin(), v.end());
  return GkSummary::FromSorted(v, eps);
}

KllSketch MakeKll(std::size_t n, double eps, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> d(-1e3f, 1e3f);
  KllSketch sketch(eps);
  for (std::size_t i = 0; i < n; ++i) sketch.Observe(d(rng));
  return sketch;
}

CountMinSketch MakeCountMin(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> d(0, 99);
  CountMinSketch sketch(0.01, 0.01);
  for (std::size_t i = 0; i < n; ++i) {
    sketch.Update(static_cast<float>(d(rng)));
  }
  return sketch;
}

MisraGries MakeMisraGries(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> d(0, 49);
  MisraGries sketch(0.05);
  for (std::size_t i = 0; i < n; ++i) {
    sketch.Observe(static_cast<float>(d(rng)));
  }
  return sketch;
}

TEST(SerializeTest, GkRoundTripPreservesEverything) {
  const GkSummary original = MakeGk(5000, 0.01, 1);
  std::vector<std::uint8_t> buffer;
  ASSERT_TRUE(SerializeSummary(original, &buffer).ok());

  const auto peeked = PeekSketchType(buffer);
  ASSERT_TRUE(peeked.ok());
  EXPECT_EQ(*peeked, SketchType::kGkSummary);

  std::span<const std::uint8_t> cursor = buffer;
  const auto parsed = DeserializeGkSummary(&cursor);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(cursor.empty());
  EXPECT_EQ(parsed->count(), original.count());
  EXPECT_EQ(parsed->epsilon(), original.epsilon());
  EXPECT_EQ(parsed->tuples(), original.tuples());
  for (double phi : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(parsed->Query(phi), original.Query(phi));
  }
}

TEST(SerializeTest, KllRoundTripIsBitIdentical) {
  const KllSketch original = MakeKll(100000, 0.01, 2);
  ASSERT_GT(original.compactions(), 0u);
  std::vector<std::uint8_t> buffer;
  ASSERT_TRUE(SerializeSummary(original, &buffer).ok());

  std::span<const std::uint8_t> cursor = buffer;
  const auto parsed = DeserializeKllSketch(&cursor);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(cursor.empty());
  EXPECT_EQ(parsed->count(), original.count());
  EXPECT_EQ(parsed->epsilon(), original.epsilon());
  EXPECT_EQ(parsed->seed(), original.seed());
  EXPECT_EQ(parsed->worst_case_rank_error(), original.worst_case_rank_error());
  EXPECT_EQ(parsed->compactions(), original.compactions());
  EXPECT_EQ(parsed->levels(), original.levels());
  for (double phi : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_EQ(parsed->Quantile(phi), original.Quantile(phi));
  }

  // Determinism downstream of the round trip: serializing the parsed sketch
  // reproduces the exact bytes.
  std::vector<std::uint8_t> again;
  ASSERT_TRUE(SerializeSummary(*parsed, &again).ok());
  EXPECT_EQ(again, buffer);
}

TEST(SerializeTest, CountMinRoundTripPreservesCounters) {
  const CountMinSketch original = MakeCountMin(20000, 3);
  std::vector<std::uint8_t> buffer;
  ASSERT_TRUE(SerializeSummary(original, &buffer).ok());

  std::span<const std::uint8_t> cursor = buffer;
  const auto parsed = DeserializeCountMin(&cursor);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(cursor.empty());
  EXPECT_EQ(parsed->total_weight(), original.total_weight());
  EXPECT_EQ(parsed->width(), original.width());
  EXPECT_EQ(parsed->depth(), original.depth());
  EXPECT_EQ(parsed->counters(), original.counters());
  for (float v : {0.0f, 17.0f, 99.0f}) {
    EXPECT_EQ(parsed->EstimateCount(v), original.EstimateCount(v));
  }
}

TEST(SerializeTest, MisraGriesRoundTripPreservesEntries) {
  const MisraGries original = MakeMisraGries(20000, 4);
  std::vector<std::uint8_t> buffer;
  ASSERT_TRUE(SerializeSummary(original, &buffer).ok());

  std::span<const std::uint8_t> cursor = buffer;
  const auto parsed = DeserializeMisraGries(&cursor);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(cursor.empty());
  EXPECT_EQ(parsed->stream_length(), original.stream_length());
  EXPECT_EQ(parsed->HeavyHitters(0.03), original.HeavyHitters(0.03));

  // The entry list serializes in canonical value order, so equal summaries
  // produce identical bytes regardless of hash-map iteration order.
  std::vector<std::uint8_t> again;
  ASSERT_TRUE(SerializeSummary(*parsed, &again).ok());
  EXPECT_EQ(again, buffer);
}

TEST(SerializeTest, EmptySummariesRoundTrip) {
  std::vector<std::uint8_t> buffer;
  ASSERT_TRUE(SerializeSummary(GkSummary(), &buffer).ok());
  ASSERT_TRUE(SerializeSummary(KllSketch(0.01), &buffer).ok());
  ASSERT_TRUE(SerializeSummary(CountMinSketch(0.1, 0.1), &buffer).ok());
  ASSERT_TRUE(SerializeSummary(MisraGries(0.1), &buffer).ok());

  std::span<const std::uint8_t> cursor = buffer;
  const auto gk = DeserializeGkSummary(&cursor);
  ASSERT_TRUE(gk.ok()) << gk.status().ToString();
  EXPECT_EQ(gk->count(), 0u);
  const auto kll = DeserializeKllSketch(&cursor);
  ASSERT_TRUE(kll.ok()) << kll.status().ToString();
  EXPECT_EQ(kll->count(), 0u);
  const auto cm = DeserializeCountMin(&cursor);
  ASSERT_TRUE(cm.ok()) << cm.status().ToString();
  EXPECT_EQ(cm->total_weight(), 0);
  const auto mg = DeserializeMisraGries(&cursor);
  ASSERT_TRUE(mg.ok()) << mg.status().ToString();
  EXPECT_EQ(mg->stream_length(), 0u);
  EXPECT_TRUE(cursor.empty());
}

TEST(SerializeTest, SequentialFramingAcrossTypes) {
  const GkSummary a = MakeGk(100, 0.05, 5);
  const KllSketch b = MakeKll(5000, 0.02, 6);
  const MisraGries c = MakeMisraGries(1000, 7);
  std::vector<std::uint8_t> buffer;
  ASSERT_TRUE(SerializeSummary(a, &buffer).ok());
  ASSERT_TRUE(SerializeSummary(b, &buffer).ok());
  ASSERT_TRUE(SerializeSummary(c, &buffer).ok());

  std::span<const std::uint8_t> cursor = buffer;
  ASSERT_TRUE(DeserializeGkSummary(&cursor).ok());
  EXPECT_EQ(*PeekSketchType(cursor), SketchType::kKll);
  ASSERT_TRUE(DeserializeKllSketch(&cursor).ok());
  EXPECT_EQ(*PeekSketchType(cursor), SketchType::kMisraGries);
  ASSERT_TRUE(DeserializeMisraGries(&cursor).ok());
  EXPECT_TRUE(cursor.empty());
}

TEST(SerializeTest, TypeMismatchFailsAndLeavesSpanUntouched) {
  std::vector<std::uint8_t> buffer;
  ASSERT_TRUE(SerializeSummary(MakeKll(1000, 0.05, 8), &buffer).ok());

  std::span<const std::uint8_t> cursor = buffer;
  const auto as_gk = DeserializeGkSummary(&cursor);
  EXPECT_FALSE(as_gk.ok());
  EXPECT_EQ(cursor.size(), buffer.size()) << "span must not advance on error";
  // The right reader still succeeds afterwards.
  EXPECT_TRUE(DeserializeKllSketch(&cursor).ok());
}

TEST(SerializeTest, MalformedCorpusReturnsStatus) {
  std::vector<std::uint8_t> buffer;
  ASSERT_TRUE(SerializeSummary(MakeGk(50, 0.1, 9), &buffer).ok());

  // Bad magic.
  {
    auto corrupted = buffer;
    corrupted[0] ^= 0xFF;
    std::span<const std::uint8_t> cursor = corrupted;
    EXPECT_FALSE(DeserializeGkSummary(&cursor).ok());
    EXPECT_FALSE(PeekSketchType(corrupted).ok());
  }
  // Version from the future.
  {
    auto corrupted = buffer;
    corrupted[4] = 0xFF;
    corrupted[5] = 0xFF;
    std::span<const std::uint8_t> cursor = corrupted;
    const auto parsed = DeserializeGkSummary(&cursor);
    EXPECT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("newer"), std::string::npos);
  }
  // Version 0.
  {
    auto corrupted = buffer;
    corrupted[4] = 0;
    corrupted[5] = 0;
    std::span<const std::uint8_t> cursor = corrupted;
    EXPECT_FALSE(DeserializeGkSummary(&cursor).ok());
  }
  // Unknown sketch-type tag.
  {
    auto corrupted = buffer;
    corrupted[6] = 0x7F;
    corrupted[7] = 0x7F;
    std::span<const std::uint8_t> cursor = corrupted;
    EXPECT_FALSE(DeserializeGkSummary(&cursor).ok());
  }
  // Huge length field: must fail before any allocation or payload read.
  {
    auto corrupted = buffer;
    for (std::size_t i = 8; i < 16; ++i) corrupted[i] = 0xFF;
    std::span<const std::uint8_t> cursor = corrupted;
    EXPECT_FALSE(DeserializeGkSummary(&cursor).ok());
  }
  // Corrupted checksum.
  {
    auto corrupted = buffer;
    corrupted[16] ^= 0x01;
    std::span<const std::uint8_t> cursor = corrupted;
    const auto parsed = DeserializeGkSummary(&cursor);
    EXPECT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("checksum"), std::string::npos);
  }
  // Corrupted payload (checksum catches it).
  {
    auto corrupted = buffer;
    corrupted[corrupted.size() - 1] ^= 0xFF;
    std::span<const std::uint8_t> cursor = corrupted;
    EXPECT_FALSE(DeserializeGkSummary(&cursor).ok());
  }
  // Every truncation point fails cleanly and leaves the span untouched.
  for (std::size_t cut = 0; cut < buffer.size(); cut += 3) {
    std::span<const std::uint8_t> cursor(buffer.data(), cut);
    EXPECT_FALSE(DeserializeGkSummary(&cursor).ok()) << "cut=" << cut;
    EXPECT_EQ(cursor.size(), cut);
  }
}

TEST(SerializeTest, MalformedKllPayloadRejected) {
  std::vector<std::uint8_t> buffer;
  ASSERT_TRUE(SerializeSummary(MakeKll(50000, 0.02, 10), &buffer).ok());
  // Blow up the count field (payload offset 16 = envelope offset 36): the
  // weight-conservation invariant no longer holds. The checksum must be
  // refreshed so the structural validation (not the CRC) does the rejecting.
  auto corrupted = buffer;
  for (std::size_t i = 36; i < 44; ++i) corrupted[i] ^= 0x55;
  std::uint32_t crc = Crc32(std::span<const std::uint8_t>(corrupted).subspan(20));
  std::memcpy(corrupted.data() + 16, &crc, sizeof(crc));
  std::span<const std::uint8_t> cursor = corrupted;
  const auto parsed = DeserializeKllSketch(&cursor);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("invariant"), std::string::npos);
}

// Hand-built legacy "GKS1" framing (the previous release's checkpoint
// format): the shim must keep reading it for one release.
TEST(SerializeTest, LegacyGkShimReadsOldFraming) {
  const GkSummary original = MakeGk(500, 0.05, 11);
  std::vector<std::uint8_t> legacy;
  const auto append = [&legacy](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    legacy.insert(legacy.end(), b, b + n);
  };
  const std::uint32_t magic = 0x474B5331;  // "GKS1" (little-endian "1SKG")
  const std::uint64_t count = original.count();
  const double epsilon = original.epsilon();
  const std::uint64_t tuples = original.size();
  append(&magic, 4);
  append(&count, 8);
  append(&epsilon, 8);
  append(&tuples, 8);
  for (const GkTuple& t : original.tuples()) {
    append(&t.value, 4);
    append(&t.rmin, 8);
    append(&t.rmax, 8);
  }

  const auto peeked = PeekSketchType(legacy);
  ASSERT_TRUE(peeked.ok());
  EXPECT_EQ(*peeked, SketchType::kGkSummary);

  std::span<const std::uint8_t> cursor = legacy;
  const auto parsed = DeserializeGkSummary(&cursor);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(cursor.empty());
  EXPECT_EQ(parsed->count(), original.count());
  EXPECT_EQ(parsed->tuples(), original.tuples());

  // Truncated legacy input also fails with Status, not an abort.
  std::span<const std::uint8_t> truncated(legacy.data(), legacy.size() / 2);
  EXPECT_FALSE(DeserializeGkSummary(&truncated).ok());
}

// ---------------------------------------------------------------------------
// Golden wire files: bytes written by the current writer are committed to
// the repo; if a format change breaks reading them, released checkpoints
// would break too — bump kWireVersion and extend the shim instead.

std::string GoldenPath(const char* name) {
  return std::string(STREAMGPU_TEST_GOLDEN_DIR) + "/" + name;
}

std::vector<std::uint8_t> ReadGolden(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  std::fclose(f);
  return bytes;
}

void WriteGolden(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(SerializeTest, GoldenWireFilesStayReadable) {
  // The generators are seeded, so the expected in-memory summaries are
  // reproducible here; the committed bytes pin the serialized form.
  std::vector<std::uint8_t> gk_bytes;
  ASSERT_TRUE(SerializeSummary(MakeGk(1000, 0.02, 42), &gk_bytes).ok());
  std::vector<std::uint8_t> kll_bytes;
  ASSERT_TRUE(SerializeSummary(MakeKll(20000, 0.02, 42), &kll_bytes).ok());
  std::vector<std::uint8_t> mg_bytes;
  ASSERT_TRUE(SerializeSummary(MakeMisraGries(5000, 42), &mg_bytes).ok());
  std::vector<std::uint8_t> cm_bytes;
  ASSERT_TRUE(SerializeSummary(MakeCountMin(5000, 42), &cm_bytes).ok());

  const struct {
    const char* name;
    const std::vector<std::uint8_t>* bytes;
  } cases[] = {{"wire_gk.golden", &gk_bytes},
               {"wire_kll.golden", &kll_bytes},
               {"wire_misra_gries.golden", &mg_bytes},
               {"wire_count_min.golden", &cm_bytes}};

  if (std::getenv("STREAMGPU_REGEN_GOLDEN") != nullptr) {
    for (const auto& c : cases) WriteGolden(GoldenPath(c.name), *c.bytes);
    GTEST_SKIP() << "golden wire files regenerated";
  }

  for (const auto& c : cases) {
    const std::vector<std::uint8_t> committed = ReadGolden(GoldenPath(c.name));
    ASSERT_FALSE(committed.empty())
        << c.name << " missing; regenerate with STREAMGPU_REGEN_GOLDEN=1";
    EXPECT_EQ(committed, *c.bytes)
        << c.name << ": the writer no longer produces the committed bytes — "
        << "this breaks released checkpoints; bump kWireVersion and shim";
    // And the committed bytes must stay readable.
    EXPECT_TRUE(PeekSketchType(committed).ok()) << c.name;
  }
}

TEST(FromPartsTest, GkValidatesStructure) {
  GkSummary out;
  // Valid.
  EXPECT_TRUE(GkSummary::FromParts({{1.0f, 1, 1}, {2.0f, 2, 3}}, 3, 0.1, &out));
  EXPECT_EQ(out.count(), 3u);
  // Descending values.
  EXPECT_FALSE(GkSummary::FromParts({{2.0f, 1, 1}, {1.0f, 2, 2}}, 2, 0.1, &out));
  // rmin > rmax.
  EXPECT_FALSE(GkSummary::FromParts({{1.0f, 3, 2}}, 3, 0.1, &out));
  // rmax beyond count.
  EXPECT_FALSE(GkSummary::FromParts({{1.0f, 1, 9}}, 3, 0.1, &out));
  // Nonempty tuples with zero count / empty with nonzero count.
  EXPECT_FALSE(GkSummary::FromParts({{1.0f, 1, 1}}, 0, 0.1, &out));
  EXPECT_FALSE(GkSummary::FromParts({}, 5, 0.1, &out));
  // Bad epsilon.
  EXPECT_FALSE(GkSummary::FromParts({{1.0f, 1, 1}}, 1, 1.5, &out));
}

TEST(FromPartsTest, KllValidatesWeightConservation) {
  KllSketch out(0.5);
  // Valid: 2 items at level 0 + 1 item at level 1 = 2 + 2 = 4 elements.
  EXPECT_TRUE(KllSketch::FromParts(0.1, 7, 4, 1, 1,
                                   {{1.0f, 2.0f}, {1.5f}}, &out));
  EXPECT_EQ(out.count(), 4u);
  EXPECT_EQ(out.seed(), 7u);
  // Weight mismatch.
  EXPECT_FALSE(KllSketch::FromParts(0.1, 7, 5, 1, 1,
                                    {{1.0f, 2.0f}, {1.5f}}, &out));
  // Empty sketch must carry no compaction history.
  EXPECT_TRUE(KllSketch::FromParts(0.1, 7, 0, 0, 0, {{}}, &out));
  EXPECT_FALSE(KllSketch::FromParts(0.1, 7, 0, 1, 0, {{}}, &out));
  // Bad epsilon / no levels.
  EXPECT_FALSE(KllSketch::FromParts(1.5, 7, 0, 0, 0, {{}}, &out));
  EXPECT_FALSE(KllSketch::FromParts(0.1, 7, 0, 0, 0, {}, &out));
}

TEST(FromPartsTest, CountMinValidatesGeometry) {
  CountMinSketch out(0.5, 0.5);
  const CountMinSketch reference(0.1, 0.1);
  std::vector<std::int64_t> counters(reference.width() * reference.depth(), 0);
  EXPECT_TRUE(CountMinSketch::FromParts(0.1, 0.1, 0, reference.width(),
                                        reference.depth(), counters, &out));
  // Geometry mismatch with the epsilon/delta-derived dimensions.
  EXPECT_FALSE(CountMinSketch::FromParts(0.1, 0.1, 0, reference.width() + 1,
                                         reference.depth(), counters, &out));
  // Bad parameters validated before construction (no abort).
  EXPECT_FALSE(CountMinSketch::FromParts(1.5, 0.1, 0, reference.width(),
                                         reference.depth(), counters, &out));
}

TEST(FromPartsTest, MisraGriesValidatesEntries) {
  MisraGries out(0.5);
  EXPECT_TRUE(MisraGries::FromParts(0.25, 10, {{1.0f, 4}, {2.0f, 3}}, &out));
  EXPECT_EQ(out.EstimateCount(1.0f), 4u);
  // Counts must be positive, within n, and values distinct.
  EXPECT_FALSE(MisraGries::FromParts(0.25, 10, {{1.0f, 0}}, &out));
  EXPECT_FALSE(MisraGries::FromParts(0.25, 3, {{1.0f, 4}}, &out));
  EXPECT_FALSE(MisraGries::FromParts(0.25, 10, {{1.0f, 2}, {1.0f, 2}}, &out));
  // More entries than the 1/epsilon counter budget.
  EXPECT_FALSE(MisraGries::FromParts(0.5, 10,
                                     {{1.0f, 1}, {2.0f, 1}, {3.0f, 1}}, &out));
  // Bad epsilon validated before construction (no abort).
  EXPECT_FALSE(MisraGries::FromParts(1.5, 10, {}, &out));
}

}  // namespace
}  // namespace streamgpu::sketch
