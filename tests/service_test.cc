// StreamService acceptance tests: per-stream answers from the multiplexed
// service must be bit-identical to a dedicated estimator pipeline — serial
// and with a 4-worker pool, on the CPU and GPU-f16 backends, and under load
// shedding (where the only differences are the shed accounting and the
// honestly widened error bound).

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/frequency_estimator.h"
#include "durable/checkpoint.h"
#include "core/options.h"
#include "core/quantile_estimator.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "service/stream_service.h"
#include "sketch/combiner.h"
#include "sketch/serialize.h"
#include "stream/generator.h"

namespace streamgpu::service {
namespace {

using core::Backend;
using core::FrequencyReport;
using core::Options;
using core::QuantileReport;

// Deterministic per-stream data: distinct seed per stream so streams in one
// shard carry different values.
std::vector<float> MakeStream(std::uint64_t seed, std::size_t n) {
  stream::StreamGenerator::Config gen_config;
  gen_config.distribution = stream::Distribution::kZipf;
  gen_config.seed = seed;
  stream::StreamGenerator gen(gen_config);
  std::vector<float> out(n);
  gen.Fill(out);
  return out;
}

Options DedicatedOptions(const ServiceConfig& service,
                         const StreamConfig& stream) {
  Options opt;
  opt.epsilon = stream.epsilon;
  opt.backend = service.backend;
  opt.planner = service.planner;
  opt.gpu_format = service.gpu_format;
  opt.window_size = stream.window_size;
  opt.sliding_window = stream.sliding_window;
  opt.expected_stream_length = stream.expected_stream_length;
  return opt;
}

// Appends stream `data` to both the service and a dedicated estimator in
// identical chunked order; `*admitted_total` receives what the service
// admitted (ASSERT-aborts the calling test on any failure).
template <typename Estimator>
void MirrorAppend(StreamService& service, const StreamKey& key,
                  Estimator& dedicated, std::span<const float> data,
                  std::size_t chunk, std::size_t* admitted_total) {
  *admitted_total = 0;
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    const std::size_t n = std::min(chunk, data.size() - off);
    auto admitted = service.Append(key, data.subspan(off, n));
    ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
    // The admitted count is the exact prefix that entered the stream:
    // mirror precisely that into the dedicated estimator.
    ASSERT_TRUE(dedicated.ObserveBatch(data.subspan(off, *admitted)).ok());
    *admitted_total += *admitted;
  }
}

struct BitIdentityParam {
  Backend backend;
  int num_workers;
};

class ServiceBitIdentityTest : public ::testing::TestWithParam<BitIdentityParam> {};

TEST_P(ServiceBitIdentityTest, ReportsMatchDedicatedPipeline) {
  const BitIdentityParam param = GetParam();
  ServiceConfig config;
  config.backend = param.backend;
  config.num_workers = param.num_workers;
  config.shard_batch_elements = 2048;  // many dispatches over the test data
  auto service_or = StreamService::Create(config);
  ASSERT_TRUE(service_or.ok());
  StreamService& service = **service_or;

  // A mix of stream shapes: whole-history and sliding, different epsilons,
  // quantiles-only and quantiles+frequencies.
  struct Case {
    StreamKey key;
    StreamConfig config;
    std::size_t elements;
    std::size_t chunk;  // append granularity (deliberately small + ragged)
  };
  std::vector<Case> cases = {
      {{1, 1}, {.epsilon = 0.01}, 20000, 97},
      {{1, 2}, {.epsilon = 0.02, .track_frequencies = true}, 15000, 41},
      {{2, 1}, {.epsilon = 0.01, .sliding_window = 4096}, 18000, 256},
      {{2, 2},
       {.epsilon = 0.05, .track_quantiles = false, .track_frequencies = true},
       9000, 13},
      {{3, 7}, {.epsilon = 0.005}, 12000, 1000},
  };

  std::vector<std::unique_ptr<core::QuantileEstimator>> quantile_refs(cases.size());
  std::vector<std::unique_ptr<core::FrequencyEstimator>> frequency_refs(cases.size());
  std::vector<std::vector<float>> data(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    ASSERT_TRUE(service.Register(cases[i].key, cases[i].config).ok());
    const Options opt = DedicatedOptions(config, cases[i].config);
    if (cases[i].config.track_quantiles) {
      auto ref = core::QuantileEstimator::Create(opt);
      ASSERT_TRUE(ref.ok()) << ref.status().ToString();
      quantile_refs[i] = std::move(*ref);
    }
    if (cases[i].config.track_frequencies) {
      auto ref = core::FrequencyEstimator::Create(opt);
      ASSERT_TRUE(ref.ok()) << ref.status().ToString();
      frequency_refs[i] = std::move(*ref);
    }
    data[i] = MakeStream(1000 + i, cases[i].elements);
  }

  // Interleave appends round-robin so shard micro-batches really do carry
  // chunks of many streams at once.
  std::vector<std::size_t> offset(cases.size(), 0);
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      if (offset[i] >= data[i].size()) continue;
      progress = true;
      const std::size_t n = std::min(cases[i].chunk, data[i].size() - offset[i]);
      const std::span<const float> piece(data[i].data() + offset[i], n);
      auto admitted = service.Append(cases[i].key, piece);
      ASSERT_TRUE(admitted.ok());
      ASSERT_EQ(*admitted, n);  // kBlock admits everything
      if (quantile_refs[i]) {
        ASSERT_TRUE(quantile_refs[i]->ObserveBatch(piece).ok());
      }
      if (frequency_refs[i]) {
        ASSERT_TRUE(frequency_refs[i]->ObserveBatch(piece).ok());
      }
      offset[i] += n;
    }
  }
  ASSERT_TRUE(service.FlushAll().ok());

  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "stream " << i);
    if (quantile_refs[i]) {
      ASSERT_TRUE(quantile_refs[i]->Flush().ok());
      for (double phi : {0.05, 0.25, 0.5, 0.9, 0.99}) {
        auto got = service.Quantile(cases[i].key, phi);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, quantile_refs[i]->Quantile(phi)) << "phi=" << phi;
      }
    }
    if (frequency_refs[i]) {
      ASSERT_TRUE(frequency_refs[i]->Flush().ok());
      for (double support : {0.0, 0.01, 0.1}) {
        auto got = service.HeavyHitters(cases[i].key, support);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, frequency_refs[i]->HeavyHitters(support));
      }
      for (float probe : {1.0f, 2.0f, 17.0f}) {
        auto got = service.EstimateCount(cases[i].key, probe);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, frequency_refs[i]->EstimateCount(probe));
      }
    }
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.streams, cases.size());
  EXPECT_EQ(stats.elements_shed, 0u);
  std::uint64_t total = 0;
  for (const Case& c : cases) total += c.elements;
  EXPECT_EQ(stats.elements_observed, total);
  EXPECT_GT(stats.batches_dispatched, 0u);
  EXPECT_GT(stats.windows_merged, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ServiceBitIdentityTest,
    ::testing::Values(BitIdentityParam{Backend::kCpuRadixMerge, 1},
                      BitIdentityParam{Backend::kCpuRadixMerge, 4},
                      BitIdentityParam{Backend::kGpuPbsn, 1},
                      BitIdentityParam{Backend::kGpuPbsn, 4}));

TEST(StreamServiceTest, SheddingWidensBoundsHonestly) {
  // Overload one shard deterministically: pause dispatch so nothing leaves
  // the ingress, and cap the backlog well below the appended volume.
  ServiceConfig config;
  config.backend = Backend::kCpuRadixMerge;
  config.num_workers = 4;
  config.admission = stream::AdmissionPolicy::kShed;
  config.shard_ingress_capacity = 6000;
  config.shard_batch_elements = 1024;
  auto service_or = StreamService::Create(config);
  ASSERT_TRUE(service_or.ok());
  StreamService& service = **service_or;

  const StreamKey key{42, 7};
  StreamConfig stream_config;
  stream_config.epsilon = 0.01;
  ASSERT_TRUE(service.Register(key, stream_config).ok());
  Options opt = DedicatedOptions(config, stream_config);
  auto dedicated = core::QuantileEstimator::Create(opt);
  ASSERT_TRUE(dedicated.ok());

  const std::vector<float> data = MakeStream(99, 20000);
  service.PauseDispatch();
  std::size_t admitted_total = 0;
  MirrorAppend(service, key, **dedicated, data, /*chunk=*/512, &admitted_total);
  EXPECT_LT(admitted_total, data.size());  // the cap actually bit
  const std::uint64_t shed = data.size() - admitted_total;
  EXPECT_EQ(service.admission().total_shed(), shed);

  ASSERT_TRUE(service.ResumeDispatch().ok());
  ASSERT_TRUE(service.FlushAll().ok());
  ASSERT_TRUE((*dedicated)->Flush().ok());

  for (double phi : {0.1, 0.5, 0.9}) {
    auto got = service.Quantile(key, phi);
    ASSERT_TRUE(got.ok());
    // Same answer as the dedicated estimator over the admitted prefix, with
    // the shed count surfaced and folded into the error bound — nothing else
    // may differ.
    QuantileReport expected = (*dedicated)->Quantile(phi);
    expected.elements_shed = shed;
    expected.rank_error_bound += shed;
    EXPECT_EQ(*got, expected) << "phi=" << phi;
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.elements_shed, shed);
  EXPECT_EQ(stats.elements_observed, admitted_total);
}

TEST(StreamServiceTest, HundredThousandStreamsRegisterAndAnswer) {
  ServiceConfig config;
  config.backend = Backend::kCpuRadixMerge;
  config.num_workers = 4;
  auto service_or = StreamService::Create(config);
  ASSERT_TRUE(service_or.ok());
  StreamService& service = **service_or;

  // Registration must be cheap enough (lazy window buffers) that 100k
  // mostly-idle streams are practical.
  constexpr std::uint64_t kStreams = 100000;
  StreamConfig stream_config;
  stream_config.epsilon = 0.05;
  for (std::uint64_t i = 0; i < kStreams; ++i) {
    ASSERT_TRUE(service.Register({i % 257, i}, stream_config).ok());
  }
  EXPECT_EQ(service.num_streams(), kStreams);

  // A sparse subset actually ingests; every registered stream stays queryable.
  const std::vector<float> data = MakeStream(7, 2000);
  for (std::uint64_t i = 0; i < kStreams; i += 1000) {
    auto admitted = service.Append({i % 257, i}, data);
    ASSERT_TRUE(admitted.ok());
    ASSERT_EQ(*admitted, data.size());
  }
  ASSERT_TRUE(service.FlushAll().ok());

  auto active = service.Quantile({0, 0}, 0.5);
  ASSERT_TRUE(active.ok());
  EXPECT_EQ(active->window_coverage, data.size());
  auto idle = service.Quantile({1, 1}, 0.5);
  ASSERT_TRUE(idle.ok());
  EXPECT_EQ(idle->window_coverage, 0u);
}

TEST(StreamServiceTest, BatchQuantilesMatchesIndividualQueries) {
  ServiceConfig config;
  config.num_workers = 2;
  auto service_or = StreamService::Create(config);
  ASSERT_TRUE(service_or.ok());
  StreamService& service = **service_or;

  std::vector<StreamKey> keys;
  for (std::uint64_t i = 0; i < 64; ++i) keys.push_back({i % 5, i});
  StreamConfig stream_config;
  stream_config.epsilon = 0.02;
  for (const StreamKey& key : keys) {
    ASSERT_TRUE(service.Register(key, stream_config).ok());
    const std::vector<float> data = MakeStream(key.stream, 3000);
    auto admitted = service.Append(key, data);
    ASSERT_TRUE(admitted.ok());
  }
  ASSERT_TRUE(service.FlushAll().ok());

  const std::vector<QuantileReport> batch = service.BatchQuantiles(keys, 0.5);
  ASSERT_EQ(batch.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto individual = service.Quantile(keys[i], 0.5);
    ASSERT_TRUE(individual.ok());
    EXPECT_EQ(batch[i], *individual) << "key " << i;
  }
}

TEST(StreamServiceTest, QueriesRunConcurrentlyWithIngest) {
  // TSan coverage: a reader thread snapshots reports while the ingest thread
  // appends and dispatches through the worker pool.
  ServiceConfig config;
  config.num_workers = 4;
  config.shard_batch_elements = 512;  // frequent dispatch → frequent merges
  auto service_or = StreamService::Create(config);
  ASSERT_TRUE(service_or.ok());
  StreamService& service = **service_or;

  std::vector<StreamKey> keys;
  StreamConfig stream_config;
  stream_config.epsilon = 0.02;
  for (std::uint64_t i = 0; i < 32; ++i) {
    keys.push_back({1, i});
    ASSERT_TRUE(service.Register(keys.back(), stream_config).ok());
  }

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::vector<QuantileReport> reports = service.BatchQuantiles(keys, 0.5);
      for (const QuantileReport& report : reports) {
        // Coverage only grows as windows drain; the answer must always be
        // internally consistent.
        ASSERT_LE(report.window_coverage, report.stream_length);
      }
    }
  });

  const std::vector<float> data = MakeStream(3, 4000);
  for (int round = 0; round < 5; ++round) {
    for (const StreamKey& key : keys) {
      auto admitted = service.Append(key, data);
      ASSERT_TRUE(admitted.ok());
    }
  }
  ASSERT_TRUE(service.WaitIdle().ok());
  done.store(true, std::memory_order_release);
  reader.join();
  ASSERT_TRUE(service.FlushAll().ok());

  auto report = service.Quantile(keys[0], 0.5);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->window_coverage, 5u * data.size());
}

TEST(StreamServiceTest, RegistryAndLifecycleErrors) {
  ServiceConfig config;
  auto service_or = StreamService::Create(config);
  ASSERT_TRUE(service_or.ok());
  StreamService& service = **service_or;

  const StreamKey key{1, 1};
  ASSERT_TRUE(service.Register(key, {}).ok());
  EXPECT_EQ(service.Register(key, {}).code(),
            core::Status::Code::kFailedPrecondition);

  StreamConfig none;
  none.track_quantiles = false;
  none.track_frequencies = false;
  EXPECT_EQ(service.Register({1, 2}, none).code(),
            core::Status::Code::kInvalidArgument);

  StreamConfig bad_epsilon;
  bad_epsilon.epsilon = 2.0;
  EXPECT_EQ(service.Register({1, 3}, bad_epsilon).code(),
            core::Status::Code::kInvalidArgument);

  const std::vector<float> data = {1.0f, 2.0f, 3.0f};
  EXPECT_EQ(service.Append({9, 9}, data).status().code(),
            core::Status::Code::kInvalidArgument);
  EXPECT_EQ(service.Quantile({9, 9}, 0.5).status().code(),
            core::Status::Code::kInvalidArgument);
  EXPECT_EQ(service.Flush({9, 9}).code(), core::Status::Code::kInvalidArgument);

  // Quantiles-only stream rejects frequency queries.
  EXPECT_EQ(service.HeavyHitters(key, 0.1).status().code(),
            core::Status::Code::kInvalidArgument);
  EXPECT_EQ(service.EstimateCount(key, 1.0f).status().code(),
            core::Status::Code::kInvalidArgument);

  // Append after Flush is rejected; Flush stays idempotent.
  ASSERT_TRUE(service.Append(key, data).ok());
  ASSERT_TRUE(service.Flush(key).ok());
  ASSERT_TRUE(service.Flush(key).ok());
  EXPECT_EQ(service.Append(key, data).status().code(),
            core::Status::Code::kFailedPrecondition);

  ServiceConfig invalid;
  invalid.num_workers = 0;
  EXPECT_FALSE(StreamService::Create(invalid).ok());
  ServiceConfig starved;
  starved.num_workers = 4;
  starved.max_batches_in_flight = 2;
  EXPECT_FALSE(StreamService::Create(starved).ok());
}

TEST(StreamServiceTest, PerTenantMetricsAndServiceCounters) {
  obs::MetricsRegistry metrics;
  ServiceConfig config;
  config.obs.metrics = &metrics;
  config.max_tenant_metric_series = 2;
  auto service_or = StreamService::Create(config);
  ASSERT_TRUE(service_or.ok());
  StreamService& service = **service_or;

  StreamConfig stream_config;
  stream_config.epsilon = 0.05;
  // Three tenants with a cap of two labeled series: the third lands in the
  // shared "~other" overflow series instead of aborting the registry.
  for (std::uint64_t tenant : {1, 2, 3}) {
    ASSERT_TRUE(service.Register({tenant, 0}, stream_config).ok());
  }
  const std::vector<float> data = MakeStream(11, 500);
  for (std::uint64_t tenant : {1, 2, 3}) {
    ASSERT_TRUE(service.Append({tenant, 0}, data).ok());
  }
  ASSERT_TRUE(service.FlushAll().ok());

  const obs::MetricsSnapshot snapshot = metrics.Snapshot();
  std::uint64_t tenant1 = 0, other = 0, observed = 0, windows = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "service.tenant.elements_observed{tenant=\"1\"}") tenant1 = value;
    if (name == "service.tenant.elements_observed{tenant=\"~other\"}") other = value;
    if (name == "service.elements_observed") observed = value;
    if (name == "service.windows_merged") windows = value;
  }
  EXPECT_EQ(tenant1, data.size());
  EXPECT_EQ(other, data.size());  // tenant 3 overflowed into "~other"
  EXPECT_EQ(observed, 3 * data.size());
  EXPECT_GT(windows, 0u);
}

TEST(StreamServiceTest, MergedQuantileCoversUnionOfShardStreams) {
  for (const auto kind : {sketch::QuantileSketchKind::kGk,
                          sketch::QuantileSketchKind::kKll}) {
    auto service_or = StreamService::Create({});
    ASSERT_TRUE(service_or.ok());
    StreamService& service = **service_or;

    StreamConfig stream_config;
    stream_config.epsilon = 0.02;
    stream_config.quantile_sketch = kind;

    // Four shard streams of one logical stream, plus a fifth registered but
    // never fed (an empty shard must be a merge identity).
    std::vector<StreamKey> keys;
    std::vector<float> all;
    for (std::uint64_t s = 0; s < 4; ++s) {
      const StreamKey key{77, s};
      ASSERT_TRUE(service.Register(key, stream_config).ok());
      const auto data = MakeStream(500 + s, 5000);
      ASSERT_TRUE(service.Append(key, data).ok());
      all.insert(all.end(), data.begin(), data.end());
      keys.push_back(key);
    }
    const StreamKey idle{77, 99};
    ASSERT_TRUE(service.Register(idle, stream_config).ok());
    keys.push_back(idle);
    ASSERT_TRUE(service.FlushAll().ok());

    std::sort(all.begin(), all.end());
    for (double phi : {0.1, 0.5, 0.9}) {
      auto merged = service.MergedQuantile(keys, phi);
      ASSERT_TRUE(merged.ok()) << merged.status().ToString();
      EXPECT_EQ(merged->window_coverage, all.size());
      EXPECT_EQ(merged->elements_shed, 0u);
      // The merged value's rank over the union stream is within the report's
      // own stated bound of the target rank.
      const auto target =
          static_cast<std::uint64_t>(std::ceil(phi * static_cast<double>(all.size())));
      const auto lo = std::lower_bound(all.begin(), all.end(), merged->value);
      const auto hi = std::upper_bound(all.begin(), all.end(), merged->value);
      const double rank_lo = static_cast<double>(lo - all.begin()) + 1;
      const double rank_hi = static_cast<double>(hi - all.begin());
      const double allowed = static_cast<double>(merged->rank_error_bound) + 1;
      EXPECT_GE(static_cast<double>(target), rank_lo - allowed) << "phi=" << phi;
      EXPECT_LE(static_cast<double>(target), rank_hi + allowed) << "phi=" << phi;
    }

    // Order independence: permuted keys give a bit-identical report.
    std::vector<StreamKey> reversed(keys.rbegin(), keys.rend());
    auto fwd = service.MergedQuantile(keys, 0.5);
    auto bwd = service.MergedQuantile(reversed, 0.5);
    ASSERT_TRUE(fwd.ok());
    ASSERT_TRUE(bwd.ok());
    EXPECT_EQ(*fwd, *bwd);
  }
}

TEST(StreamServiceTest, ExportedSummariesMergeOffline) {
  // The scale-out path: export each shard stream's summary as wire bytes and
  // merge them in a combiner outside the service, matching MergedQuantile.
  auto service_or = StreamService::Create({});
  ASSERT_TRUE(service_or.ok());
  StreamService& service = **service_or;

  StreamConfig stream_config;
  stream_config.epsilon = 0.02;
  stream_config.quantile_sketch = sketch::QuantileSketchKind::kKll;

  std::vector<StreamKey> keys{{5, 0}, {5, 1}, {5, 2}};
  for (const StreamKey& key : keys) {
    ASSERT_TRUE(service.Register(key, stream_config).ok());
    ASSERT_TRUE(service.Append(key, MakeStream(900 + key.stream, 4000)).ok());
  }
  ASSERT_TRUE(service.FlushAll().ok());

  sketch::QuantileShardCombiner combiner;
  for (const StreamKey& key : keys) {
    auto bytes = service.ExportQuantileSummary(key);
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    ASSERT_TRUE(sketch::PeekSketchType(*bytes).ok());
    ASSERT_TRUE(combiner.AddShard(*bytes).ok());
  }
  const QuantileReport offline = combiner.Quantile(0.5);
  auto online = service.MergedQuantile(keys, 0.5);
  ASSERT_TRUE(online.ok());
  EXPECT_EQ(offline.value, online->value);
  EXPECT_EQ(offline.window_coverage, online->window_coverage);

  // Unknown key and a frequencies-only stream both fail cleanly.
  EXPECT_FALSE(service.ExportQuantileSummary({5, 42}).ok());
  StreamConfig freq_only;
  freq_only.epsilon = 0.05;
  freq_only.track_quantiles = false;
  freq_only.track_frequencies = true;
  ASSERT_TRUE(service.Register({6, 0}, freq_only).ok());
  EXPECT_FALSE(service.ExportQuantileSummary({6, 0}).ok());
  EXPECT_FALSE(service.MergedQuantile(std::vector<StreamKey>{}, 0.5).ok());
}

TEST(StreamServiceTest, KllBackedStreamsMatchDedicatedEstimator) {
  // The redesigned sketch API end-to-end: a KLL-backed service stream answers
  // bit-identically to a dedicated KLL-backed estimator fed the same prefix.
  ServiceConfig config;
  config.num_workers = 2;
  auto service_or = StreamService::Create(config);
  ASSERT_TRUE(service_or.ok());
  StreamService& service = **service_or;

  StreamConfig stream_config;
  stream_config.epsilon = 0.01;
  stream_config.quantile_sketch = sketch::QuantileSketchKind::kKll;
  const StreamKey key{9, 1};
  ASSERT_TRUE(service.Register(key, stream_config).ok());

  Options opt = DedicatedOptions(config, stream_config);
  opt.quantile_sketch = sketch::QuantileSketchKind::kKll;
  auto dedicated = core::QuantileEstimator::Create(opt);
  ASSERT_TRUE(dedicated.ok()) << dedicated.status().ToString();

  const std::vector<float> data = MakeStream(321, 30000);
  std::size_t admitted = 0;
  MirrorAppend(service, key, **dedicated, data, 129, &admitted);
  ASSERT_TRUE(service.FlushAll().ok());
  ASSERT_TRUE((*dedicated)->Flush().ok());

  for (double phi : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    auto svc = service.Quantile(key, phi);
    ASSERT_TRUE(svc.ok());
    const QuantileReport ref = (*dedicated)->Quantile(phi);
    EXPECT_EQ(svc->value, ref.value) << "phi=" << phi;
    EXPECT_EQ(svc->rank_error_bound, ref.rank_error_bound) << "phi=" << phi;
    EXPECT_EQ(svc->window_coverage, ref.window_coverage) << "phi=" << phi;
  }
}

TEST(StreamServiceTest, RestoredServiceAnswersAndMergesIdentically) {
  // Durable round trip (docs/DURABILITY.md): checkpoint mid-ingest, rebuild
  // from the snapshot, replay the un-checkpointed suffix, and every answer —
  // per-stream, merged across streams, and the serialized shard export —
  // is bit-identical to the service that never went down.
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "service_restore_merge";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ServiceConfig config;
  config.num_workers = 1;
  config.num_shards = 2;
  config.shard_batch_elements = 512;
  StreamConfig stream_config;
  stream_config.epsilon = 0.02;
  const std::vector<StreamKey> keys = {{0, 0}, {0, 1}, {1, 2}};
  const std::size_t kPerStream = 2000;
  const std::size_t kCut = 1111;

  auto ingest = [&](StreamService* service, std::size_t from, std::size_t to) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const std::vector<float> data = MakeStream(100 + i, kPerStream);
      ASSERT_TRUE(
          service->Append(keys[i], std::span(data).subspan(from, to - from)).ok());
    }
  };

  auto ref = StreamService::Create(config);
  ASSERT_TRUE(ref.ok());
  for (const StreamKey& key : keys) {
    ASSERT_TRUE((*ref)->Register(key, stream_config).ok());
  }
  ingest(ref->get(), 0, kPerStream);
  ASSERT_TRUE((*ref)->FlushAll().ok());

  {
    auto first = StreamService::Create(config);
    ASSERT_TRUE(first.ok());
    for (const StreamKey& key : keys) {
      ASSERT_TRUE((*first)->Register(key, stream_config).ok());
    }
    ingest(first->get(), 0, kCut);
    durable::CheckpointWriter writer(dir.string());
    ASSERT_TRUE((*first)->Checkpoint(&writer).ok());
  }

  auto restored = StreamService::RestoreFrom(config, dir.string());
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  ingest(restored->get(), kCut, kPerStream);
  ASSERT_TRUE((*restored)->FlushAll().ok());

  for (const StreamKey& key : keys) {
    const auto a = (*restored)->Quantile(key, 0.5);
    const auto b = (*ref)->Quantile(key, 0.5);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
    const auto export_a = (*restored)->ExportQuantileSummary(key);
    const auto export_b = (*ref)->ExportQuantileSummary(key);
    ASSERT_TRUE(export_a.ok());
    ASSERT_TRUE(export_b.ok());
    EXPECT_EQ(*export_a, *export_b);
  }
  for (double phi : {0.25, 0.5, 0.9}) {
    const auto merged_a = (*restored)->MergedQuantile(keys, phi);
    const auto merged_b = (*ref)->MergedQuantile(keys, phi);
    ASSERT_TRUE(merged_a.ok());
    ASSERT_TRUE(merged_b.ok());
    EXPECT_EQ(*merged_a, *merged_b) << "phi=" << phi;
  }
}

}  // namespace
}  // namespace streamgpu::service
