// Property tests for sliding-window frequency and quantile estimation
// (sketch/sliding_window.h, §5.3): fixed and variable-width windows.

#include "sketch/sliding_window.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/exact.h"
#include "sketch/gk_summary.h"
#include "sketch/histogram.h"

namespace streamgpu::sketch {
namespace {

std::vector<float> ZipfStream(std::size_t n, int domain, unsigned seed) {
  std::vector<double> cdf(domain);
  double total = 0;
  for (int r = 0; r < domain; ++r) {
    total += 1.0 / std::pow(r + 1.0, 1.2);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> uni(0, 1);
  std::vector<float> out(n);
  for (float& v : out) {
    v = static_cast<float>(std::lower_bound(cdf.begin(), cdf.end(), uni(rng)) -
                           cdf.begin());
  }
  return out;
}

void FeedFrequency(SlidingWindowFrequency* sw, std::span<const float> stream) {
  const std::uint64_t b = sw->block_size();
  for (std::size_t off = 0; off < stream.size(); off += b) {
    const std::size_t len = std::min<std::size_t>(b, stream.size() - off);
    std::vector<float> block(stream.begin() + off, stream.begin() + off + len);
    std::sort(block.begin(), block.end());
    sw->AddBlockHistogram(BuildHistogram(block), len);
  }
}

void FeedQuantile(SlidingWindowQuantile* sw, std::span<const float> stream) {
  const std::uint64_t b = sw->block_size();
  for (std::size_t off = 0; off < stream.size(); off += b) {
    const std::size_t len = std::min<std::size_t>(b, stream.size() - off);
    std::vector<float> block(stream.begin() + off, stream.begin() + off + len);
    std::sort(block.begin(), block.end());
    sw->AddBlockSummary(GkSummary::FromSorted(block, sw->block_epsilon()));
  }
}

struct SlidingCase {
  double eps;
  std::uint64_t window;
  std::size_t n;
};

class SlidingFrequencyProperty : public ::testing::TestWithParam<SlidingCase> {};

TEST_P(SlidingFrequencyProperty, CountsWithinEpsilonOfWindowTruth) {
  const SlidingCase& p = GetParam();
  auto stream = ZipfStream(p.n, 100, 91);
  SlidingWindowFrequency sw(p.eps, p.window);
  FeedFrequency(&sw, stream);

  // Ground truth over the most recent `covered` elements.
  ASSERT_GE(sw.covered_elements(), p.window - sw.block_size());
  const std::span<const float> tail(stream.data() + p.n - sw.covered_elements(),
                                    sw.covered_elements());
  const auto exact = ExactCounts(tail);
  const auto slack = static_cast<std::uint64_t>(
      std::ceil(p.eps * static_cast<double>(p.window)));
  for (const auto& [value, truth] : exact) {
    const std::uint64_t est = sw.EstimateCount(value);
    EXPECT_LE(est, truth) << value;       // never overcounts live elements
    EXPECT_GE(est + slack, truth) << value;
  }
}

TEST_P(SlidingFrequencyProperty, NoFalseNegativeHeavyHitters) {
  const SlidingCase& p = GetParam();
  auto stream = ZipfStream(p.n, 100, 92);
  SlidingWindowFrequency sw(p.eps, p.window);
  FeedFrequency(&sw, stream);

  const std::span<const float> tail(stream.data() + p.n - sw.covered_elements(),
                                    sw.covered_elements());
  for (double support : {0.05, 0.1, 0.2}) {
    if (support <= p.eps) continue;
    const auto reported = sw.HeavyHitters(support);
    for (const auto& [value, f] : ExactHeavyHitters(tail, support)) {
      const bool found = std::any_of(reported.begin(), reported.end(),
                                     [v = value](const auto& r) { return r.first == v; });
      EXPECT_TRUE(found) << "missing " << value << " (" << f << ") at support " << support;
    }
  }
}

TEST_P(SlidingFrequencyProperty, VariableWidthQueries) {
  const SlidingCase& p = GetParam();
  auto stream = ZipfStream(p.n, 100, 93);
  SlidingWindowFrequency sw(p.eps, p.window);
  FeedFrequency(&sw, stream);

  for (std::uint64_t sub : {p.window / 2, p.window / 4}) {
    if (sub < 2 * sw.block_size()) continue;
    // The estimator answers over the newest blocks covering <= sub elements.
    const std::uint64_t covered = (sub / sw.block_size()) * sw.block_size();
    const std::span<const float> tail(stream.data() + p.n - covered, covered);
    const auto exact = ExactCounts(tail);
    const auto slack = static_cast<std::uint64_t>(
        std::ceil(p.eps * static_cast<double>(p.window)));
    for (const auto& [value, truth] : exact) {
      const std::uint64_t est = sw.EstimateCount(value, sub);
      EXPECT_LE(est, truth) << value << " sub=" << sub;
      EXPECT_GE(est + slack, truth) << value << " sub=" << sub;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlidingFrequencyProperty,
    ::testing::Values(SlidingCase{0.02, 10000, 50000}, SlidingCase{0.05, 4000, 30000},
                      SlidingCase{0.01, 20000, 60000}, SlidingCase{0.1, 1000, 5000}),
    [](const ::testing::TestParamInfo<SlidingCase>& info) {
      return "eps" + std::to_string(static_cast<int>(1.0 / info.param.eps)) + "_w" +
             std::to_string(info.param.window) + "_n" + std::to_string(info.param.n);
    });

TEST(SlidingFrequencyTest, SpaceIsBoundedByBlocksTimesEntries) {
  SlidingWindowFrequency sw(0.01, 100000);
  auto stream = ZipfStream(400000, 50000, 94);
  FeedFrequency(&sw, stream);
  // ~ (2/eps) blocks x (2/eps) entries worst case; generous cap.
  EXPECT_LE(sw.summary_size(), static_cast<std::size_t>(8.0 / (0.01 * 0.01)));
}

TEST(SlidingFrequencyTest, OldElementsExpire) {
  // First half is all 1s, second half all 2s; with W = half the stream the
  // 1s must be gone.
  std::vector<float> stream;
  stream.insert(stream.end(), 10000, 1.0f);
  stream.insert(stream.end(), 10000, 2.0f);
  SlidingWindowFrequency sw(0.05, 10000);
  FeedFrequency(&sw, stream);
  EXPECT_EQ(sw.EstimateCount(1.0f), 0u);
  EXPECT_GE(sw.EstimateCount(2.0f), 9000u);
}

class SlidingQuantileProperty : public ::testing::TestWithParam<SlidingCase> {};

TEST_P(SlidingQuantileProperty, QuantilesWithinEpsilonOfWindowTruth) {
  const SlidingCase& p = GetParam();
  std::mt19937 rng(95);
  std::uniform_real_distribution<float> d(0.0f, 1e5f);
  std::vector<float> stream(p.n);
  for (float& v : stream) v = d(rng);

  SlidingWindowQuantile sw(p.eps, p.window);
  FeedQuantile(&sw, stream);
  ASSERT_GE(sw.covered_elements(), p.window - sw.block_size());

  std::vector<float> tail(stream.end() - static_cast<std::ptrdiff_t>(sw.covered_elements()),
                          stream.end());
  std::sort(tail.begin(), tail.end());
  const double allowed = p.eps * static_cast<double>(p.window) + 1;
  for (double phi : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const float q = sw.Query(phi);
    const auto it = std::lower_bound(tail.begin(), tail.end(), q);
    const double rank = static_cast<double>(it - tail.begin()) + 1;
    const double target = std::ceil(phi * static_cast<double>(tail.size()));
    EXPECT_NEAR(rank, target, allowed) << "phi=" << phi;
  }
}

TEST_P(SlidingQuantileProperty, VariableWidthQueries) {
  const SlidingCase& p = GetParam();
  std::mt19937 rng(96);
  std::uniform_real_distribution<float> d(0.0f, 1e5f);
  std::vector<float> stream(p.n);
  for (float& v : stream) v = d(rng);

  SlidingWindowQuantile sw(p.eps, p.window);
  FeedQuantile(&sw, stream);

  const std::uint64_t sub = p.window / 2;
  if (sub < 2 * sw.block_size()) return;
  const std::uint64_t covered = (sub / sw.block_size()) * sw.block_size();
  std::vector<float> tail(stream.end() - static_cast<std::ptrdiff_t>(covered),
                          stream.end());
  std::sort(tail.begin(), tail.end());
  const double allowed = p.eps * static_cast<double>(p.window) + 1;
  const float q = sw.Query(0.5, sub);
  const auto it = std::lower_bound(tail.begin(), tail.end(), q);
  const double rank = static_cast<double>(it - tail.begin()) + 1;
  EXPECT_NEAR(rank, std::ceil(0.5 * static_cast<double>(tail.size())), allowed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlidingQuantileProperty,
    ::testing::Values(SlidingCase{0.02, 10000, 50000}, SlidingCase{0.05, 4000, 30000},
                      SlidingCase{0.01, 20000, 60000}),
    [](const ::testing::TestParamInfo<SlidingCase>& info) {
      return "eps" + std::to_string(static_cast<int>(1.0 / info.param.eps)) + "_w" +
             std::to_string(info.param.window) + "_n" + std::to_string(info.param.n);
    });

TEST(SlidingQuantileTest, DistributionShiftIsTracked) {
  // Values jump from ~[0,1000] to ~[5000,6000]; the median over the window
  // must follow once the window slides past the shift.
  std::mt19937 rng(97);
  std::uniform_real_distribution<float> lo(0.0f, 1000.0f);
  std::uniform_real_distribution<float> hi(5000.0f, 6000.0f);
  std::vector<float> stream;
  for (int i = 0; i < 20000; ++i) stream.push_back(lo(rng));
  for (int i = 0; i < 20000; ++i) stream.push_back(hi(rng));

  SlidingWindowQuantile sw(0.02, 10000);
  FeedQuantile(&sw, stream);
  const float median = sw.Query(0.5);
  EXPECT_GE(median, 5000.0f);
  EXPECT_LE(median, 6000.0f);
}

TEST(SlidingQuantileTest, RejectsTooCoarseBlockSummary) {
  SlidingWindowQuantile sw(0.02, 10000);
  std::vector<float> block(sw.block_size());
  for (std::size_t i = 0; i < block.size(); ++i) block[i] = static_cast<float>(i);
  EXPECT_DEATH(sw.AddBlockSummary(GkSummary::FromSorted(block, 0.4)),
               "epsilon/2");
}

}  // namespace
}  // namespace streamgpu::sketch
