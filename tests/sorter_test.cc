// End-to-end sorter tests: every backend (GPU PBSN, GPU bitonic, CPU
// quicksort, std::sort, radix/merge, sample sort) must sort every
// distribution at every size, and the GPU backends' operation counts must
// match the paper's analytic claims (§4.5).

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "gpu/device.h"
#include "gpu/half.h"
#include "hwmodel/hardware_profiles.h"
#include "sort/bitonic_gpu.h"
#include "sort/cpu_sort.h"
#include "sort/merge.h"
#include "sort/pbsn_gpu.h"
#include "sort/pbsn_network.h"
#include "sort/radix_sort.h"
#include "sort/sample_sort.h"
#include "sort/sorter.h"

namespace streamgpu::sort {
namespace {

enum class BackendKind { kPbsn, kPbsnF16, kPbsnOneChannel, kPbsnNoRowOpt, kBitonic,
                         kBitonicF16, kQuicksort, kStdSort, kRadixMerge, kSampleSort };

const char* KindName(BackendKind k) {
  switch (k) {
    case BackendKind::kPbsn:
      return "pbsn";
    case BackendKind::kPbsnF16:
      return "pbsn_f16";
    case BackendKind::kPbsnOneChannel:
      return "pbsn_1ch";
    case BackendKind::kPbsnNoRowOpt:
      return "pbsn_norowopt";
    case BackendKind::kBitonic:
      return "bitonic";
    case BackendKind::kBitonicF16:
      return "bitonic_f16";
    case BackendKind::kQuicksort:
      return "quicksort";
    case BackendKind::kStdSort:
      return "stdsort";
    case BackendKind::kRadixMerge:
      return "radix";
    case BackendKind::kSampleSort:
      return "sample";
  }
  return "?";
}

enum class Dist { kRandom, kSorted, kReverse, kFewDistinct, kAllEqual, kWithExtremes };

const char* DistName(Dist d) {
  switch (d) {
    case Dist::kRandom:
      return "random";
    case Dist::kSorted:
      return "sorted";
    case Dist::kReverse:
      return "reverse";
    case Dist::kFewDistinct:
      return "fewdistinct";
    case Dist::kAllEqual:
      return "allequal";
    case Dist::kWithExtremes:
      return "extremes";
  }
  return "?";
}

std::vector<float> MakeData(Dist dist, std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<float> v(n);
  switch (dist) {
    case Dist::kRandom: {
      std::uniform_real_distribution<float> d(0.0f, 2000.0f);
      for (float& x : v) x = d(rng);
      break;
    }
    case Dist::kSorted:
      for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<float>(i);
      break;
    case Dist::kReverse:
      for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<float>(n - i);
      break;
    case Dist::kFewDistinct: {
      std::uniform_int_distribution<int> d(0, 7);
      for (float& x : v) x = static_cast<float>(d(rng));
      break;
    }
    case Dist::kAllEqual:
      std::fill(v.begin(), v.end(), 42.0f);
      break;
    case Dist::kWithExtremes: {
      std::uniform_real_distribution<float> d(-1000.0f, 1000.0f);
      for (float& x : v) x = d(rng);
      if (n >= 4) {
        v[0] = -std::numeric_limits<float>::infinity();
        v[1] = std::numeric_limits<float>::infinity();
        v[2] = 0.0f;
        v[3] = -0.0f;
      }
      break;
    }
  }
  return v;
}

struct SorterCase {
  BackendKind kind;
  Dist dist;
  std::size_t n;
};

class SorterCorrectness : public ::testing::TestWithParam<SorterCase> {
 protected:
  // Builds the sorter under test; GPU backends share `device_`.
  std::unique_ptr<Sorter> MakeSorter(BackendKind kind) {
    switch (kind) {
      case BackendKind::kPbsn:
        return std::make_unique<PbsnGpuSorter>(&device_, hwmodel::kGeForce6800Ultra,
                                               hwmodel::kPentium4_3400);
      case BackendKind::kPbsnF16: {
        PbsnOptions opt;
        opt.format = gpu::Format::kFloat16;
        return std::make_unique<PbsnGpuSorter>(&device_, hwmodel::kGeForce6800Ultra,
                                               hwmodel::kPentium4_3400, opt);
      }
      case BackendKind::kPbsnOneChannel: {
        PbsnOptions opt;
        opt.use_four_channels = false;
        return std::make_unique<PbsnGpuSorter>(&device_, hwmodel::kGeForce6800Ultra,
                                               hwmodel::kPentium4_3400, opt);
      }
      case BackendKind::kPbsnNoRowOpt: {
        PbsnOptions opt;
        opt.use_row_block_optimization = false;
        return std::make_unique<PbsnGpuSorter>(&device_, hwmodel::kGeForce6800Ultra,
                                               hwmodel::kPentium4_3400, opt);
      }
      case BackendKind::kBitonic:
        return std::make_unique<BitonicGpuSorter>(&device_, hwmodel::kGeForce6800Ultra);
      case BackendKind::kBitonicF16:
        return std::make_unique<BitonicGpuSorter>(&device_, hwmodel::kGeForce6800Ultra,
                                                  gpu::Format::kFloat16);
      case BackendKind::kQuicksort:
        return std::make_unique<QuicksortSorter>(hwmodel::kPentium4_3400);
      case BackendKind::kStdSort:
        return std::make_unique<StdSortSorter>(hwmodel::kPentium4_3400);
      case BackendKind::kRadixMerge:
        return std::make_unique<RadixMergeSorter>(hwmodel::kPentium4_3400);
      case BackendKind::kSampleSort:
        return std::make_unique<SampleSortSorter>(hwmodel::kPentium4_3400);
    }
    return nullptr;
  }

  gpu::GpuDevice device_;
};

TEST_P(SorterCorrectness, SortsExactly) {
  const SorterCase& param = GetParam();
  auto sorter = MakeSorter(param.kind);
  std::vector<float> data = MakeData(param.dist, param.n, 1234);

  std::vector<float> expected = data;
  if (param.kind == BackendKind::kPbsnF16 || param.kind == BackendKind::kBitonicF16) {
    // The 16-bit pipeline returns the binary16-quantized values.
    for (float& v : expected) v = gpu::QuantizeToHalf(v);
  }
  std::sort(expected.begin(), expected.end());

  sorter->Sort(data);
  ASSERT_EQ(data, expected);
  if (param.n >= 2) {
    // The distribution sorts legitimately report zero comparisons while a
    // window fits one radix chunk (counting passes compare nothing).
    if (param.kind != BackendKind::kRadixMerge &&
        param.kind != BackendKind::kSampleSort) {
      EXPECT_GT(sorter->last_run().comparisons, 0u);
    }
    EXPECT_GT(sorter->last_run().simulated_seconds, 0.0);
  }
}

std::vector<SorterCase> AllCases() {
  std::vector<SorterCase> cases;
  const BackendKind kinds[] = {BackendKind::kPbsn,       BackendKind::kPbsnF16,
                               BackendKind::kPbsnOneChannel, BackendKind::kPbsnNoRowOpt,
                               BackendKind::kBitonic,    BackendKind::kBitonicF16,
                               BackendKind::kQuicksort,  BackendKind::kStdSort,
                               BackendKind::kRadixMerge, BackendKind::kSampleSort};
  const Dist dists[] = {Dist::kRandom, Dist::kSorted,   Dist::kReverse,
                        Dist::kFewDistinct, Dist::kAllEqual, Dist::kWithExtremes};
  const std::size_t sizes[] = {1, 2, 3, 5, 16, 17, 100, 1000, 4096, 10000};
  for (BackendKind k : kinds) {
    for (Dist d : dists) {
      for (std::size_t n : sizes) cases.push_back({k, d, n});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SorterCorrectness, ::testing::ValuesIn(AllCases()),
                         [](const ::testing::TestParamInfo<SorterCase>& info) {
                           return std::string(KindName(info.param.kind)) + "_" +
                                  DistName(info.param.dist) + "_n" +
                                  std::to_string(info.param.n);
                         });

// --- Batched run sorting (the paper's four-window buffering, §4.1). ---

TEST(SortRunsTest, PbsnSortsIndependentRuns) {
  gpu::GpuDevice device;
  PbsnGpuSorter sorter(&device, hwmodel::kGeForce6800Ultra, hwmodel::kPentium4_3400);
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> d(0.0f, 100.0f);

  std::vector<std::vector<float>> runs(7);  // deliberately not a multiple of 4
  std::vector<std::vector<float>> expected(7);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    runs[i].resize(50 + 31 * i);
    for (float& x : runs[i]) x = d(rng);
    expected[i] = runs[i];
    std::sort(expected[i].begin(), expected[i].end());
  }
  std::vector<std::span<float>> views(runs.begin(), runs.end());
  sorter.SortRuns(views);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    ASSERT_EQ(runs[i], expected[i]) << "run " << i;
  }
}

TEST(SortRunsTest, DefaultPathSortsRunsOneByOne) {
  QuicksortSorter sorter(hwmodel::kPentium4_3400);
  std::vector<std::vector<float>> runs = {{3, 1, 2}, {9, 8}, {5}};
  std::vector<std::span<float>> views(runs.begin(), runs.end());
  sorter.SortRuns(views);
  EXPECT_EQ(runs[0], (std::vector<float>{1, 2, 3}));
  EXPECT_EQ(runs[1], (std::vector<float>{8, 9}));
  EXPECT_EQ(runs[2], (std::vector<float>{5}));
  EXPECT_GT(sorter.last_run().comparisons, 0u);
}

TEST(SortRunsTest, NonPowerOfTwoRunsPadWithoutLeaking) {
  // Runs in one RGBA group pad to the longest run's power-of-two size
  // (+inf padding, sorted to the tail). The padding must never leak into
  // any run's output, including much-shorter runs sharing the group.
  gpu::GpuDevice device;
  PbsnGpuSorter sorter(&device, hwmodel::kGeForce6800Ultra, hwmodel::kPentium4_3400);
  std::mt19937 rng(23);
  std::uniform_real_distribution<float> d(-50.0f, 50.0f);

  // One group: 1000 pads to 1024; 37, 1, and 777 ride along padded to 1024.
  std::vector<std::vector<float>> runs(4);
  runs[0].resize(1000);
  runs[1].resize(37);
  runs[2].resize(1);
  runs[3].resize(777);
  std::vector<std::vector<float>> expected(4);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    for (float& x : runs[i]) x = d(rng);
    expected[i] = runs[i];
    std::sort(expected[i].begin(), expected[i].end());
  }
  std::vector<std::span<float>> views(runs.begin(), runs.end());
  sorter.SortRuns(views);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    ASSERT_EQ(runs[i], expected[i]) << "run " << i;
    for (float v : runs[i]) ASSERT_TRUE(std::isfinite(v)) << "run " << i;
  }
}

TEST(SortRunsTest, ZeroLengthRunsAreHandled) {
  gpu::GpuDevice device;
  PbsnGpuSorter sorter(&device, hwmodel::kGeForce6800Ultra, hwmodel::kPentium4_3400);

  // Zero-length runs mixed into a group, a group that is entirely empty,
  // and an empty run list: no crashes, non-empty runs still sort.
  std::vector<std::vector<float>> runs = {{}, {3, 1, 2}, {}, {7, 5}, {}, {}, {}, {}};
  std::vector<std::span<float>> views(runs.begin(), runs.end());
  sorter.SortRuns(views);  // group 2 (runs 4..7) is all-empty
  EXPECT_EQ(runs[1], (std::vector<float>{1, 2, 3}));
  EXPECT_EQ(runs[3], (std::vector<float>{5, 7}));

  std::vector<std::span<float>> none;
  sorter.SortRuns(none);
  EXPECT_EQ(sorter.last_run().comparisons, 0u);
}

TEST(SortRunsTest, BatchAccumulatesTiming) {
  gpu::GpuDevice device;
  PbsnGpuSorter sorter(&device, hwmodel::kGeForce6800Ultra, hwmodel::kPentium4_3400);
  std::vector<std::vector<float>> runs(8, std::vector<float>{4, 3, 2, 1});
  std::vector<std::span<float>> views(runs.begin(), runs.end());
  sorter.SortRuns(views);
  const double batched = sorter.last_run().simulated_seconds;

  // Sorting one run must cost less than the 8-run batch.
  std::vector<float> one{4, 3, 2, 1};
  std::vector<std::span<float>> single(1, std::span<float>(one));
  sorter.SortRuns(single);
  EXPECT_LT(sorter.last_run().simulated_seconds, batched);
}

// --- §4.5 analytic claims about the GPU PBSN sort. ---

TEST(PbsnAnalysisTest, ComparisonCountMatchesPaperFormula) {
  // "Our algorithm performs a total of (n + n log^2(n/4)) comparisons to
  // sort a sequence of length n": n/4 texels per step, log^2(n/4) steps,
  // 4 scalar comparisons per blended fragment, plus <= 2n merge comparisons
  // (we bound rather than pin the merge term).
  gpu::GpuDevice device;
  PbsnGpuSorter sorter(&device, hwmodel::kGeForce6800Ultra, hwmodel::kPentium4_3400);
  for (std::size_t n : {1024u, 4096u, 16384u}) {
    std::vector<float> data = MakeData(Dist::kRandom, n, 42);
    sorter.Sort(data);
    const std::uint64_t m = n / 4;
    const std::uint64_t log_m = CeilLog2(m);
    const std::uint64_t gpu_comparisons = 4 * m * log_m * log_m;  // n log^2(n/4)
    EXPECT_EQ(sorter.last_stats().ScalarComparisons(), gpu_comparisons) << n;
    EXPECT_LE(sorter.last_run().comparisons, gpu_comparisons + 2 * n) << n;
    EXPECT_GE(sorter.last_run().comparisons, gpu_comparisons + n / 2) << n;
  }
}

TEST(PbsnAnalysisTest, PassCountIsLogSquared) {
  gpu::GpuDevice device;
  PbsnGpuSorter sorter(&device, hwmodel::kGeForce6800Ultra, hwmodel::kPentium4_3400);
  std::vector<float> data = MakeData(Dist::kRandom, 4096, 3);
  sorter.Sort(data);
  // One framebuffer-to-texture copy per step: log^2(n/4) steps.
  const std::uint64_t log_m = CeilLog2(4096 / 4);
  EXPECT_EQ(sorter.last_stats().fb_to_texture_copies, log_m * log_m);
}

TEST(PbsnAnalysisTest, SingleUploadAndReadback) {
  // "we stream the data once to the GPU, perform the computation, and
  // readback" (§4.1): bus bytes equal one texture each way.
  gpu::GpuDevice device;
  PbsnGpuSorter sorter(&device, hwmodel::kGeForce6800Ultra, hwmodel::kPentium4_3400);
  const std::size_t n = 4096;
  std::vector<float> data = MakeData(Dist::kRandom, n, 4);
  sorter.Sort(data);
  const std::uint64_t texture_bytes = n * sizeof(float);  // n/4 texels x 16 B
  EXPECT_EQ(sorter.last_stats().bytes_uploaded, texture_bytes);
  EXPECT_EQ(sorter.last_stats().bytes_readback, texture_bytes);
}

TEST(PbsnAnalysisTest, RowBlockOptimizationOnlyChangesDrawCalls) {
  gpu::GpuDevice device;
  PbsnGpuSorter fast(&device, hwmodel::kGeForce6800Ultra, hwmodel::kPentium4_3400);
  PbsnOptions slow_opt;
  slow_opt.use_row_block_optimization = false;
  PbsnGpuSorter slow(&device, hwmodel::kGeForce6800Ultra, hwmodel::kPentium4_3400,
                     slow_opt);

  std::vector<float> a = MakeData(Dist::kRandom, 4096, 5);
  std::vector<float> b = a;
  fast.Sort(a);
  slow.Sort(b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(fast.last_stats().fragments_shaded, slow.last_stats().fragments_shaded);
  EXPECT_LT(fast.last_stats().draw_calls, slow.last_stats().draw_calls);
  EXPECT_LT(fast.last_run().simulated_seconds, slow.last_run().simulated_seconds);
}

TEST(BitonicAnalysisTest, InstructionCountPerPixel) {
  // The baseline executes >= 53 instructions per pixel per stage [40]
  // and log(M)(log(M)+1)/2 stages.
  gpu::GpuDevice device;
  BitonicGpuSorter sorter(&device, hwmodel::kGeForce6800Ultra);
  const std::size_t n = 1024;
  std::vector<float> data = MakeData(Dist::kRandom, n, 6);
  sorter.Sort(data);
  const std::uint64_t stages = 10 * 11 / 2;  // log2(1024) = 10
  EXPECT_EQ(sorter.last_stats().program_fragments, n * stages);
  EXPECT_EQ(sorter.last_stats().program_instructions, n * stages * 53u);
}

TEST(GpuVsGpuTest, PbsnIsMuchFasterThanBitonicSimulated) {
  // §4.5: "nearly an order of magnitude faster than prior GPU-based bitonic
  // sort implementations".
  gpu::GpuDevice device;
  PbsnOptions opt;
  opt.format = gpu::Format::kFloat16;
  PbsnGpuSorter pbsn(&device, hwmodel::kGeForce6800Ultra, hwmodel::kPentium4_3400, opt);
  BitonicGpuSorter bitonic(&device, hwmodel::kGeForce6800Ultra);

  const std::size_t n = 262144;
  std::vector<float> a = MakeData(Dist::kRandom, n, 7);
  std::vector<float> b = a;
  pbsn.Sort(a);
  bitonic.Sort(b);
  EXPECT_GT(bitonic.last_run().simulated_seconds,
            6.0 * pbsn.last_run().simulated_seconds);
}

TEST(LargeInputTest, PbsnSortsTwoMillion) {
  // One big-input pass through the full pipeline (texture 1024x512 per
  // channel, 19^2 = 361 network steps): catches any capacity/indexing issue
  // the small parameterized cases cannot.
  gpu::GpuDevice device;
  PbsnOptions opt;
  opt.format = gpu::Format::kFloat16;
  PbsnGpuSorter sorter(&device, hwmodel::kGeForce6800Ultra, hwmodel::kPentium4_3400,
                       opt);
  std::vector<float> data = MakeData(Dist::kRandom, 1 << 21, 77);
  std::vector<float> expected = data;
  for (float& v : expected) v = gpu::QuantizeToHalf(v);
  std::sort(expected.begin(), expected.end());
  sorter.Sort(data);
  ASSERT_EQ(data, expected);
  // Comparisons follow the analytic formula at this scale too.
  const std::uint64_t log_m = CeilLog2((1u << 21) / 4);
  EXPECT_EQ(sorter.last_stats().ScalarComparisons(), (1u << 21) * log_m * log_m);
}

// --- Second-generation CPU backends (radix/merge, sample sort). ---

TEST(RadixMergeTest, CanonicalBitPatternOrderForZerosAndNaNs) {
  // The key transform totally orders every bit pattern: -0.0 sorts before
  // +0.0 and NaNs (by sign-cleared payload) sort above +inf — the same
  // canonical order on every host, which is the backend's determinism
  // contract where operator< is only partial.
  RadixMergeSorter sorter(hwmodel::kPentium4_3400);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<float> data = {1.0f, 0.0f, nan, -0.0f, -inf, inf, -1.0f, 0.0f, -0.0f, 42.0f};
  sorter.Sort(data);
  const std::vector<float> head = {-inf, -1.0f, -0.0f, -0.0f, 0.0f, 0.0f, 1.0f, 42.0f, inf};
  for (std::size_t i = 0; i < head.size(); ++i) {
    EXPECT_EQ(std::signbit(data[i]), std::signbit(head[i])) << i;
    EXPECT_TRUE(data[i] == head[i] || (i < 4 && data[i] == head[i])) << i;
  }
  EXPECT_TRUE(std::isnan(data.back()));
}

TEST(RadixMergeTest, MergesAcrossCacheChunks) {
  // Inputs beyond one chunk take the radix-per-chunk + loser-tree-merge
  // path; the merge is the only stage that reports comparisons.
  RadixMergeSorter sorter(hwmodel::kPentium4_3400);
  const std::size_t n = RadixMergeSorter::kChunkKeys * 2 + 123;
  std::vector<float> data = MakeData(Dist::kRandom, n, 99);
  std::vector<float> expected = data;
  std::sort(expected.begin(), expected.end());
  sorter.Sort(data);
  ASSERT_EQ(data, expected);
  EXPECT_GT(sorter.last_run().comparisons, 0u);
  // Merge stage is charged to the simulated clock on top of the radix cost.
  EXPECT_GT(sorter.last_run().simulated_seconds, 0.0);
}

TEST(RadixMergeTest, DeterministicAcrossRepeats) {
  const std::size_t n = 50000;
  std::vector<float> a = MakeData(Dist::kRandom, n, 7);
  std::vector<float> b = a;
  RadixMergeSorter s1(hwmodel::kPentium4_3400);
  RadixMergeSorter s2(hwmodel::kPentium4_3400);
  s1.Sort(a);
  s2.Sort(b);
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), n * sizeof(float)));
}

TEST(SampleSortTest, PartitionsLargeInputsAndCountsClassification) {
  SampleSortSorter sorter(hwmodel::kPentium4_3400);
  const std::size_t n = SampleSortSorter::kMinPartitionKeys * 4;  // forces bucketing
  std::vector<float> data = MakeData(Dist::kRandom, n, 11);
  std::vector<float> expected = data;
  std::sort(expected.begin(), expected.end());
  sorter.Sort(data);
  ASSERT_EQ(data, expected);
  EXPECT_GT(sorter.last_run().comparisons, 0u);  // splitter classification
}

TEST(SampleSortTest, HeavyDuplicatesDegradeGracefully) {
  // All-equal and few-distinct streams defeat any splitter choice; the
  // oversized bucket falls through to radix and stays correct.
  SampleSortSorter sorter(hwmodel::kPentium4_3400);
  const std::size_t n = SampleSortSorter::kMinPartitionKeys * 2;
  for (Dist d : {Dist::kAllEqual, Dist::kFewDistinct}) {
    std::vector<float> data = MakeData(d, n, 13);
    std::vector<float> expected = data;
    std::sort(expected.begin(), expected.end());
    sorter.Sort(data);
    ASSERT_EQ(data, expected) << DistName(d);
  }
}

TEST(SampleSortTest, MatchesRadixByteForByte) {
  // Both distribution backends realize the same canonical bit-pattern
  // order, so their outputs agree to the byte even where operator== would
  // not distinguish (-0.0 vs +0.0).
  const std::size_t n = SampleSortSorter::kMinPartitionKeys * 3;
  std::vector<float> a = MakeData(Dist::kWithExtremes, n, 17);
  std::vector<float> b = a;
  SampleSortSorter sample(hwmodel::kPentium4_3400);
  RadixMergeSorter radix(hwmodel::kPentium4_3400);
  sample.Sort(a);
  radix.Sort(b);
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), n * sizeof(float)));
}

TEST(MergeKeyRunsTest, MergesStablyAndCountsComparisons) {
  const std::vector<std::uint32_t> r1 = {1, 4, 4, 9};
  const std::vector<std::uint32_t> r2 = {2, 4, 8};
  const std::vector<std::uint32_t> r3 = {0, 0xFFFFFFFFu};
  const std::span<const std::uint32_t> runs[] = {r1, r2, r3};
  std::vector<std::uint32_t> out(r1.size() + r2.size() + r3.size());
  const std::uint64_t comparisons =
      MergeKeyRuns(std::span<const std::span<const std::uint32_t>>(runs), out);
  const std::vector<std::uint32_t> expected = {0, 1, 2, 4, 4, 4, 8, 9, 0xFFFFFFFFu};
  EXPECT_EQ(out, expected);
  EXPECT_GT(comparisons, 0u);
}

// --- CPU quicksort internals. ---

TEST(QuicksortTest, ComparisonCountIsNearNLogN) {
  std::vector<float> data = MakeData(Dist::kRandom, 100000, 8);
  CpuSortCounters counters;
  QuicksortInstrumented(data, &counters);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  const double n = 100000;
  const double nlogn = n * std::log2(n);
  EXPECT_GT(static_cast<double>(counters.comparisons), nlogn);
  EXPECT_LT(static_cast<double>(counters.comparisons), 3.0 * nlogn);
}

TEST(QuicksortTest, HandlesManyDuplicates) {
  std::vector<float> data = MakeData(Dist::kFewDistinct, 50000, 9);
  CpuSortCounters counters;
  QuicksortInstrumented(data, &counters);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  // Must not degrade to quadratic on duplicates (Hoare partitioning splits
  // equal runs evenly).
  const double nlogn = 50000.0 * std::log2(50000.0);
  EXPECT_LT(static_cast<double>(counters.comparisons), 4.0 * nlogn);
}

TEST(QuicksortTest, SortedInputIsNotQuadratic) {
  std::vector<float> data = MakeData(Dist::kSorted, 50000, 10);
  CpuSortCounters counters;
  QuicksortInstrumented(data, &counters);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  const double nlogn = 50000.0 * std::log2(50000.0);
  EXPECT_LT(static_cast<double>(counters.comparisons), 4.0 * nlogn);
}

}  // namespace
}  // namespace streamgpu::sort
