// Tests for the synthetic stream sources (stream/generator.h) and window
// batching (stream/window_buffer.h).

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "gpu/half.h"
#include "stream/generator.h"
#include "stream/window_buffer.h"

namespace streamgpu::stream {
namespace {

TEST(GeneratorTest, DeterministicForSameSeed) {
  for (Distribution d : {Distribution::kUniform, Distribution::kZipf,
                         Distribution::kNetworkFlows, Distribution::kFinanceTicks}) {
    StreamGenerator a({.distribution = d, .seed = 42});
    StreamGenerator b({.distribution = d, .seed = 42});
    EXPECT_EQ(a.Take(1000), b.Take(1000)) << DistributionName(d);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  StreamGenerator a({.distribution = Distribution::kUniform, .seed = 1});
  StreamGenerator b({.distribution = Distribution::kUniform, .seed = 2});
  EXPECT_NE(a.Take(100), b.Take(100));
}

TEST(GeneratorTest, UniformStaysInDomain) {
  StreamGenerator g({.distribution = Distribution::kUniform, .seed = 3,
                     .domain_size = 100});
  for (float v : g.Take(10000)) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 100.0f);
    EXPECT_EQ(v, std::floor(v));  // integer-valued
  }
}

TEST(GeneratorTest, UniformCoversDomainRoughlyEvenly) {
  StreamGenerator g({.distribution = Distribution::kUniform, .seed = 4,
                     .domain_size = 10});
  std::unordered_map<float, int> counts;
  for (float v : g.Take(100000)) ++counts[v];
  ASSERT_EQ(counts.size(), 10u);
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(c, 10000, 600) << v;
  }
}

TEST(GeneratorTest, ZipfIsSkewedAndOrdered) {
  StreamGenerator g({.distribution = Distribution::kZipf, .seed = 5,
                     .domain_size = 1000, .zipf_s = 1.2});
  std::unordered_map<float, int> counts;
  for (float v : g.Take(200000)) ++counts[v];
  // Rank 0 must dominate rank 10 which must dominate rank 100.
  EXPECT_GT(counts[0.0f], counts[10.0f]);
  EXPECT_GT(counts[10.0f], counts[100.0f]);
  // Rank 0 carries a large share under s=1.2.
  EXPECT_GT(counts[0.0f], 200000 / 20);
}

TEST(GeneratorTest, SortedIsMonotonic) {
  StreamGenerator g({.distribution = Distribution::kSorted, .seed = 6});
  const auto v = g.Take(10000);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(GeneratorTest, ReverseSortedIsMonotonicDescending) {
  StreamGenerator g({.distribution = Distribution::kReverseSorted, .seed = 6});
  const auto v = g.Take(10000);
  EXPECT_TRUE(std::is_sorted(v.rbegin(), v.rend()));
}

TEST(GeneratorTest, NearlySortedIsMostlyOrdered) {
  StreamGenerator g({.distribution = Distribution::kNearlySorted, .seed = 7,
                     .disorder = 0.01});
  const auto v = g.Take(100000);
  std::size_t inversions = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] < v[i - 1]) ++inversions;
  }
  EXPECT_LT(inversions, v.size() / 20);
  EXPECT_GT(inversions, 0u);
}

TEST(GeneratorTest, NetworkFlowsHaveBursts) {
  StreamGenerator g({.distribution = Distribution::kNetworkFlows, .seed = 8,
                     .domain_size = 500, .mean_burst = 8.0});
  const auto v = g.Take(100000);
  // Consecutive repeats should be common (bursts) but not universal.
  std::size_t repeats = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] == v[i - 1]) ++repeats;
  }
  EXPECT_GT(repeats, v.size() / 2);
  EXPECT_LT(repeats, v.size() - v.size() / 64);
}

TEST(GeneratorTest, FinanceTicksArePositiveAndHalfExact) {
  StreamGenerator g({.distribution = Distribution::kFinanceTicks, .seed = 9,
                     .start_price = 100.0, .volatility = 0.05});
  for (float v : g.Take(50000)) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LT(v, 2048.0f);  // random walk stays far from the half-exact limit
    EXPECT_EQ(gpu::QuantizeToHalf(v), v) << v;
  }
}

TEST(GeneratorTest, FinanceTicksMove) {
  StreamGenerator g({.distribution = Distribution::kFinanceTicks, .seed = 10});
  const auto v = g.Take(10000);
  const auto [mn, mx] = std::minmax_element(v.begin(), v.end());
  EXPECT_GT(*mx - *mn, 0.5f);
}

TEST(WindowBatcherTest, SignalsFullBatch) {
  WindowBatcher b(3, 2);
  EXPECT_FALSE(b.Push(1));
  EXPECT_FALSE(b.Push(2));
  EXPECT_FALSE(b.Push(3));
  EXPECT_FALSE(b.Push(4));
  EXPECT_FALSE(b.Push(5));
  EXPECT_TRUE(b.Push(6));  // 2 windows x 3 elements
  const auto windows = b.Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].size(), 3u);
  EXPECT_EQ(windows[1].size(), 3u);
  EXPECT_EQ(windows[1][2], 6.0f);
  b.Clear();
  EXPECT_TRUE(b.empty());
}

TEST(WindowBatcherTest, PartialFinalWindow) {
  WindowBatcher b(4, 4);
  for (int i = 0; i < 6; ++i) b.Push(static_cast<float>(i));
  const auto windows = b.Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].size(), 4u);
  EXPECT_EQ(windows[1].size(), 2u);
}

TEST(WindowBatcherTest, SpansAliasInternalStorage) {
  WindowBatcher b(2, 1);
  b.Push(3);
  b.Push(4);
  auto windows = b.Windows();
  windows[0][0] = 99.0f;
  EXPECT_EQ(b.Windows()[0][0], 99.0f);
}

}  // namespace
}  // namespace streamgpu::stream
