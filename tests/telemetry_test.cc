// Acceptance suite for the production-telemetry layer (docs/OBSERVABILITY.md):
//
//  (a) deterministic aggregation — counter and histogram merges, including
//      the labeled {backend=...} series, are bit-identical between serial
//      and 4-worker pipelined execution of the same stream;
//  (b) deterministic flight dumps — a fixed-seed quarantine fault plan
//      produces a byte-identical flight-recorder artifact across repeated
//      serial runs, and the artifact records the quarantine itself;
//  (c) honest percentiles — a p99 exported through the Prometheus text
//      format lands within the documented GK rank-error bound of the exact
//      quantile of the observed data.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <numeric>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fault.h"
#include "core/frequency_estimator.h"
#include "core/options.h"
#include "core/status.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/summary.h"
#include "stream/generator.h"

namespace streamgpu::core {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<float> ZipfStream(std::size_t n, unsigned seed) {
  stream::StreamGenerator gen({.distribution = stream::Distribution::kZipf,
                               .seed = seed,
                               .domain_size = 300});
  return gen.Take(n);
}

// Runs a FrequencyEstimator over `data` with `workers` sort workers and
// returns the merged metrics snapshot.
obs::MetricsSnapshot RunWithMetrics(const std::vector<float>& data,
                                    int workers) {
  obs::MetricsRegistry metrics;
  Options opt;
  opt.epsilon = 0.005;
  opt.backend = Backend::kAuto;
  opt.num_sort_workers = workers;
  opt.obs.metrics = &metrics;
  FrequencyEstimator fe(opt);
  EXPECT_TRUE(fe.ObserveBatch(data).ok());
  EXPECT_TRUE(fe.Flush().ok());
  return metrics.Snapshot();
}

TEST(TelemetryAcceptanceTest, LabeledCountersMergeBitIdenticallyAcrossModes) {
  // The determinism contract (obs/metrics.h): counters and histograms record
  // operation counts and operand sizes, and label values are execution-mode
  // agnostic, so the merged totals cannot depend on how work was sharded.
  const auto data = ZipfStream(40000, 11);
  const obs::MetricsSnapshot serial = RunWithMetrics(data, 1);
  const obs::MetricsSnapshot pipelined = RunWithMetrics(data, 4);

  EXPECT_EQ(serial.counters, pipelined.counters);
  ASSERT_EQ(serial.histograms.size(), pipelined.histograms.size());
  for (std::size_t i = 0; i < serial.histograms.size(); ++i) {
    EXPECT_EQ(serial.histograms[i].name, pipelined.histograms[i].name);
    EXPECT_EQ(serial.histograms[i].counts, pipelined.histograms[i].counts);
    EXPECT_DOUBLE_EQ(serial.histograms[i].sum, pipelined.histograms[i].sum);
  }

  // The comparison must actually cover labeled series and real work.
  bool saw_labeled = false;
  std::uint64_t sort_elements = 0;
  for (const auto& [key, value] : serial.counters) {
    if (key.find("{backend=\"") != std::string::npos) saw_labeled = true;
    if (key == "freq.sort.elements") sort_elements = value;
  }
  EXPECT_TRUE(saw_labeled);
  EXPECT_GE(sort_elements, data.size());
}

TEST(TelemetryAcceptanceTest, QuarantineFlightDumpIsDeterministic) {
  // Flight events carry logical sequence numbers, never wall clocks, so a
  // fixed seed must reproduce the dump byte for byte (obs/flight_recorder.h).
  const auto data = ZipfStream(20000, 7);
  const std::string dump_path = ::testing::TempDir() + "/telemetry_flight.json";

  auto run_once = [&]() {
    obs::FlightRecorder flight;
    flight.set_dump_path(dump_path);
    Options opt;
    opt.epsilon = 0.005;
    opt.backend = Backend::kGpuPbsn;
    opt.obs.flight = &flight;
    opt.fault.plan = *FaultPlan::Parse("readback:bitflip:every=2", 13);
    opt.fault.cpu_fallback = false;
    opt.fault.max_retries = 1;
    opt.fault.backoff_initial_us = 1;
    opt.fault.backoff_max_us = 1;
    FrequencyEstimator fe(opt);
    EXPECT_TRUE(fe.ObserveBatch(data).ok());
    EXPECT_TRUE(fe.Flush().ok());
    EXPECT_GT(fe.fault_stats().windows_quarantined, 0u);
    EXPECT_GE(flight.dumps(), 1u);
    return ReadFile(dump_path);
  };

  const std::string first = run_once();
  EXPECT_NE(first.find("\"reason\": \"quarantine\""), std::string::npos);
  EXPECT_NE(first.find("window_quarantined"), std::string::npos);
  EXPECT_NE(first.find("fault_injected"), std::string::npos);
  EXPECT_EQ(first, run_once());
}

TEST(TelemetryAcceptanceTest, ExportedP99IsWithinTheDocumentedEpsilon) {
  // Feed a known multiset, export through the Prometheus writer, parse the
  // quantile="0.99" sample back out, and check its exact rank against the
  // bound the export itself states (the sibling _error gauge).
  constexpr std::uint64_t kN = 30000;
  std::vector<double> values(kN);
  std::iota(values.begin(), values.end(), 0.0);
  std::mt19937 rng(29);
  std::shuffle(values.begin(), values.end(), rng);

  obs::MetricsRegistry reg;
  const obs::MetricId s = reg.Summary("stage.latency_us");
  for (double v : values) reg.Observe(s, v);

  const std::string path = ::testing::TempDir() + "/telemetry_p99.prom";
  ASSERT_TRUE(obs::WritePrometheusFile(reg.Snapshot(), path.c_str()));
  const std::string prom = ReadFile(path);

  auto sample_after = [&prom](const std::string& needle) {
    const std::size_t pos = prom.find(needle);
    EXPECT_NE(pos, std::string::npos) << needle;
    return std::stod(prom.substr(pos + needle.size()));
  };
  const double p99 =
      sample_after("\nstreamgpu_stage_latency_us{quantile=\"0.99\"} ");
  const double epsilon = sample_after("\nstreamgpu_stage_latency_us_error ");
  EXPECT_GT(epsilon, 0.0);
  EXPECT_LE(epsilon, obs::StreamingSummary::kDefaultEpsilon);

  // Distinct integers 0..n-1: the exact rank of value v is v + 1.
  const double rank = p99 + 1;
  const double target = std::ceil(0.99 * static_cast<double>(kN));
  EXPECT_LE(std::abs(rank - target), epsilon * static_cast<double>(kN));
}

}  // namespace
}  // namespace streamgpu::core
