#!/usr/bin/env python3
"""Gate engine-benchmark regressions against the committed baseline.

Usage:
  check_bench_regression.py BASELINE.json NEW_ENGINE.json [--tolerance 1.2]
  check_bench_regression.py --merge ENGINE.json FIG3.json [-o BENCH_sort.json]

Check mode compares the machine-normalized kernel ratios (``rel_memcpy`` =
ns/element divided by the machine's large-memcpy ns/byte) of a fresh
bench_engine run against the baseline's ``engine`` section. Raw nanoseconds
vary with the CI runner; the ratio to streaming-copy speed is stable enough
to gate on. Exit 1 if any kernel's ratio exceeds baseline * tolerance.

Merge mode rebuilds the committed repo-root baseline from fresh
bench_engine + bench_fig3_sorting JSON outputs.
"""

import argparse
import json
import sys

DEFAULT_TOLERANCE = 1.2

MERGE_COMMENT = (
    "Blessed benchmark baseline. Regenerate with: "
    "STREAMGPU_BENCH_JSON=e.json build/bench/bench_engine && "
    "STREAMGPU_BENCH_JSON=f.json build/bench/bench_fig3_sorting, "
    "then merge (tools/check_bench_regression.py --merge e.json f.json). "
    "CI gates on machine-normalized engine ratios (rel_memcpy), not raw ns."
)


def load(path):
    with open(path) as f:
        return json.load(f)


def merge(engine_path, fig3_path, out_path):
    engine = load(engine_path)
    fig3 = load(fig3_path)
    merged = {
        "schema": 1,
        "comment": MERGE_COMMENT,
        "engine": engine["engine"],
        "fig3_sorting": fig3["fig3_sorting"],
    }
    with open(out_path, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"wrote {out_path}")
    return 0


def check(baseline_path, new_path, tolerance):
    baseline = load(baseline_path)["engine"]["kernels"]
    new = load(new_path)["engine"]["kernels"]

    failures = []
    print(f"{'kernel':<16} {'baseline':>10} {'new':>10} {'ratio':>7}  "
          f"(rel_memcpy, limit {tolerance:.2f}x)")
    for name, base in sorted(baseline.items()):
        if name not in new:
            failures.append(f"{name}: missing from new results")
            continue
        b = base["rel_memcpy"]
        n = new[name]["rel_memcpy"]
        ratio = n / b if b > 0 else float("inf")
        flag = " REGRESSED" if ratio > tolerance else ""
        print(f"{name:<16} {b:>10.2f} {n:>10.2f} {ratio:>6.2f}x{flag}")
        if ratio > tolerance:
            failures.append(f"{name}: {b:.2f} -> {n:.2f} ({ratio:.2f}x)")

    if failures:
        print("\nFAIL: engine benchmark regressed beyond "
              f"{tolerance:.2f}x the committed baseline:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("\nIf the change is intentional, regenerate the baseline "
              "(see the comment in BENCH_sort.json).", file=sys.stderr)
        return 1
    print("\nOK: all kernels within tolerance.")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs=2,
                        help="baseline.json new.json (check mode) or "
                             "engine.json fig3.json (merge mode)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="max allowed new/baseline rel_memcpy ratio "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--merge", action="store_true",
                        help="merge engine+fig3 JSON into a new baseline")
    parser.add_argument("-o", "--output", default="BENCH_sort.json",
                        help="merge-mode output path (default BENCH_sort.json)")
    args = parser.parse_args()

    if args.merge:
        return merge(args.inputs[0], args.inputs[1], args.output)
    return check(args.inputs[0], args.inputs[1], args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
