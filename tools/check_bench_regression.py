#!/usr/bin/env python3
"""Gate engine-benchmark regressions against the committed baseline.

Usage:
  check_bench_regression.py BASELINE.json NEW_ENGINE.json [--tolerance 1.2]
  check_bench_regression.py --fig3-overhead BASELINE.json NEW_FIG3.json \\
      [--overhead-tolerance 1.02]
  check_bench_regression.py --fig3-obs-overhead NEW_FIG3.json \\
      [--overhead-tolerance 1.02]
  check_bench_regression.py --fig3-backends BASELINE.json NEW_FIG3.json \\
      [--min-auto-speedup 2.0]
  check_bench_regression.py --service BASELINE_SERVICE.json NEW_SERVICE.json \\
      [--rel-single-floor 0.9] [--tolerance 1.2] [--latency-tolerance 2.0]
  check_bench_regression.py --sketch BASELINE_SKETCH.json NEW_SKETCH.json \\
      [--tolerance 1.2]
  check_bench_regression.py --durable BASELINE_DURABLE.json NEW_DURABLE.json \\
      [--overhead-limit 1.05] [--tolerance 1.2] [--latency-tolerance 2.0]
  check_bench_regression.py --merge ENGINE.json FIG3.json [-o BENCH_sort.json]

Check mode compares the machine-normalized kernel ratios (``rel_memcpy`` =
ns/element divided by the machine's large-memcpy ns/byte) of a fresh
bench_engine run against the baseline's ``engine`` section. Raw nanoseconds
vary with the CI runner; the ratio to streaming-copy speed is stable enough
to gate on. Exit 1 if any kernel's ratio exceeds baseline * tolerance.

Fig3-overhead mode gates the estimator hot path's disabled-observability
overhead: it compares per-row ``rel_memcpy`` (PBSN sort ns/key over memcpy
ns/byte) of a fresh bench_fig3_sorting run against the baseline's
``fig3_sorting`` rows, matched by n, and fails if the geometric mean of the
new/baseline ratios exceeds the overhead tolerance (default 1.02 — the
"observability hooks cost < 2% when disabled" budget from
docs/OBSERVABILITY.md). The geometric mean across rows, rather than a
per-row gate, absorbs single-size timing noise.

Fig3-obs-overhead mode gates the ENABLED-observability cost within a single
bench_fig3_sorting run (no baseline file needed): each row carries a paired
best-of-N PBSN measurement with telemetry fully on (labeled counters, the GK
latency summary, an armed flight recorder) as ``obs_rel_memcpy`` next to the
plain ``rel_memcpy``, and the gate fails if the geometric mean of
obs/plain across rows exceeds the overhead tolerance (default 1.02). The
within-run pairing cancels machine speed entirely — only the telemetry
delta remains.

Fig3-backends mode validates the per-backend rows bench_fig3_sorting emits
under each row's ``backends`` object: every backend name must be one the
planner knows (unknown rows fail the gate — a misspelled backend in the
bench would otherwise silently escape gating), every backend present in the
baseline must still be present in the new run, and at every n >= 1M the
cost-model planner ("auto") must beat PBSN on host ns/key by at least
--min-auto-speedup (default 2.0 — the docs/SORT_BACKENDS.md performance
contract for the second-generation backends).

Service mode gates the multi-tenant StreamService numbers from
bench_service against the committed BENCH_service.json baseline. The primary
contract is machine-independent: ``rel_single`` (aggregate service ingest
over a dedicated single-stream pipeline at the same worker count, measured
within one run) must stay above --rel-single-floor (default 0.9 — the
docs/SERVICE.md throughput contract) at every stream count >= 1000, and no
row's ratio may fall below baseline / --tolerance. Registry memory
(``bytes_per_idle_stream``, machine-stable) is gated at baseline *
--tolerance, and the batch-query p99 call latency — a raw wall-clock number
that does vary with the runner — only loosely at baseline *
--latency-tolerance (default 2.0).

Sketch mode gates the quantile-sketch shootout rows bench_fig7_quantiles
emits under ``sketch`` against the committed BENCH_sketch.json baseline.
Both gated quantities are deterministic on any machine (the sketches are
seeded and integer-scheduled), so the gate is tight: every row's
``observed_rel_error`` must stay within its own ``stated_rel_error`` (the
honest-bound contract of docs/SKETCHES.md), and ``summary_bytes`` may not
exceed baseline * --tolerance. Raw ns/update is machine-dependent and
reported but not gated. Every (sketch, epsilon) row in the baseline must
still be present. Regenerate with
``STREAMGPU_BENCH_JSON=BENCH_sketch.json build/bench/bench_fig7_quantiles``.

Durable mode gates the bench_durable numbers from docs/DURABILITY.md
against the committed BENCH_durable.json baseline. The headline contract is
within-run and therefore machine-independent: every ingest row the bench
marks ``gated`` (the coarse production cadence) must keep its
checkpointed/plain ingest ratio at or under --overhead-limit (default 1.05
— checkpointing may cost at most 5%). Snapshot bytes are deterministic for
the seeded stream and gated at baseline * --tolerance; restore wall-clock
seconds vary with the runner and are gated only loosely at baseline *
--latency-tolerance (default 2.0), with every baseline stream count
required to stay present.

Merge mode rebuilds the committed repo-root baseline from fresh
bench_engine + bench_fig3_sorting JSON outputs.
"""

import argparse
import json
import math
import sys

DEFAULT_TOLERANCE = 1.2
DEFAULT_OVERHEAD_TOLERANCE = 1.02
DEFAULT_MIN_AUTO_SPEEDUP = 2.0
DEFAULT_REL_SINGLE_FLOOR = 0.9
DEFAULT_LATENCY_TOLERANCE = 2.0
DEFAULT_OVERHEAD_LIMIT = 1.05
REL_SINGLE_FLOOR_STREAMS = 1000
MIN_AUTO_SPEEDUP_N = 1 << 20

# The closed set of backend names the planner can emit (must match
# hwmodel::SortBackendName plus the dispatcher's own "auto" row).
KNOWN_BACKENDS = {"pbsn", "bitonic", "cpu", "stdsort", "cpu-radix", "sample",
                  "auto"}

MERGE_COMMENT = (
    "Blessed benchmark baseline. Regenerate with: "
    "STREAMGPU_BENCH_JSON=e.json build/bench/bench_engine && "
    "STREAMGPU_BENCH_JSON=f.json build/bench/bench_fig3_sorting, "
    "then merge (tools/check_bench_regression.py --merge e.json f.json). "
    "CI gates on machine-normalized engine ratios (rel_memcpy), not raw ns."
)


def load(path):
    with open(path) as f:
        return json.load(f)


def merge(engine_path, fig3_path, out_path):
    engine = load(engine_path)
    fig3 = load(fig3_path)
    merged = {
        "schema": 1,
        "comment": MERGE_COMMENT,
        "engine": engine["engine"],
        "fig3_sorting": fig3["fig3_sorting"],
    }
    with open(out_path, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"wrote {out_path}")
    return 0


def check(baseline_path, new_path, tolerance):
    baseline = load(baseline_path)["engine"]["kernels"]
    new = load(new_path)["engine"]["kernels"]

    failures = []
    print(f"{'kernel':<16} {'baseline':>10} {'new':>10} {'ratio':>7}  "
          f"(rel_memcpy, limit {tolerance:.2f}x)")
    for name, base in sorted(baseline.items()):
        if name not in new:
            failures.append(f"{name}: missing from new results")
            continue
        b = base["rel_memcpy"]
        n = new[name]["rel_memcpy"]
        ratio = n / b if b > 0 else float("inf")
        flag = " REGRESSED" if ratio > tolerance else ""
        print(f"{name:<16} {b:>10.2f} {n:>10.2f} {ratio:>6.2f}x{flag}")
        if ratio > tolerance:
            failures.append(f"{name}: {b:.2f} -> {n:.2f} ({ratio:.2f}x)")

    if failures:
        print("\nFAIL: engine benchmark regressed beyond "
              f"{tolerance:.2f}x the committed baseline:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("\nIf the change is intentional, regenerate the baseline "
              "(see the comment in BENCH_sort.json).", file=sys.stderr)
        return 1
    print("\nOK: all kernels within tolerance.")
    return 0


def row_rel_memcpy(row, section):
    """rel_memcpy for a fig3 row; derived for pre-rel_memcpy baselines."""
    if "rel_memcpy" in row:
        return row["rel_memcpy"]
    per_byte = section.get("memcpy_ns_per_byte")
    if per_byte:
        return row["pbsn_ns_per_key"] / per_byte
    return None


def check_fig3_overhead(baseline_path, new_path, tolerance):
    baseline_doc = load(baseline_path)
    baseline = baseline_doc["fig3_sorting"]
    new = load(new_path)["fig3_sorting"]
    # Old baselines carry no memcpy calibration of their own; fall back to
    # the engine section's, measured in the same blessed run.
    if "memcpy_ns_per_byte" not in baseline and "engine" in baseline_doc:
        baseline = dict(baseline,
                        memcpy_ns_per_byte=baseline_doc["engine"]
                        .get("memcpy_ns_per_byte"))

    new_rows = {row["n"]: row for row in new["rows"]}
    ratios = []
    failures = []
    print(f"{'n':>10} {'baseline':>10} {'new':>10} {'ratio':>7}  "
          f"(rel_memcpy = pbsn ns/key over memcpy ns/B)")
    for base_row in baseline["rows"]:
        n = base_row["n"]
        if n not in new_rows:
            failures.append(f"n={n}: missing from new results")
            continue
        b = row_rel_memcpy(base_row, baseline)
        if b is None:
            failures.append(f"n={n}: baseline has no rel_memcpy and no "
                            "memcpy calibration to derive it")
            continue
        r = row_rel_memcpy(new_rows[n], new)
        ratio = r / b if b > 0 else float("inf")
        ratios.append(ratio)
        print(f"{n:>10} {b:>10.2f} {r:>10.2f} {ratio:>6.3f}x")

    if ratios:
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        flag = " EXCEEDS BUDGET" if geomean > tolerance else ""
        print(f"\ngeometric mean: {geomean:.3f}x "
              f"(overhead budget {tolerance:.2f}x){flag}")
        if geomean > tolerance:
            failures.append(f"geomean rel_memcpy {geomean:.3f}x > "
                            f"{tolerance:.2f}x budget")

    if failures:
        print("\nFAIL: disabled-observability overhead gate "
              "(bench_fig3_sorting ns/key vs the committed baseline):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("\nThe estimator hot path must stay within the < 2% "
              "disabled-observability budget (docs/OBSERVABILITY.md). If the "
              "machine changed, regenerate the baseline (see the comment in "
              "BENCH_sort.json).", file=sys.stderr)
        return 1
    print("OK: hot-path overhead within budget.")
    return 0


def check_fig3_obs_overhead(new_path, tolerance):
    new = load(new_path)["fig3_sorting"]

    ratios = []
    failures = []
    print(f"{'n':>10} {'plain':>10} {'obs':>10} {'ratio':>7}  "
          f"(rel_memcpy, enabled-telemetry budget {tolerance:.2f}x)")
    for row in new["rows"]:
        n = row["n"]
        plain = row.get("rel_memcpy")
        obs = row.get("obs_rel_memcpy")
        if obs is None:
            failures.append(f"n={n}: row has no obs_rel_memcpy (bench too old?)")
            continue
        ratio = obs / plain if plain and plain > 0 else float("inf")
        ratios.append(ratio)
        print(f"{n:>10} {plain:>10.2f} {obs:>10.2f} {ratio:>6.3f}x")

    if not ratios and not failures:
        failures.append("no rows found in fig3_sorting")
    if ratios:
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        flag = " EXCEEDS BUDGET" if geomean > tolerance else ""
        print(f"\ngeometric mean: {geomean:.3f}x "
              f"(overhead budget {tolerance:.2f}x){flag}")
        if geomean > tolerance:
            failures.append(f"geomean obs/plain rel_memcpy {geomean:.3f}x > "
                            f"{tolerance:.2f}x budget")

    if failures:
        print("\nFAIL: enabled-observability overhead gate (paired PBSN "
              "measurements within one bench_fig3_sorting run):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("\nLabeled metrics + the flight recorder must add < 2% to the "
              "sort hot path when enabled (docs/OBSERVABILITY.md).",
              file=sys.stderr)
        return 1
    print("OK: enabled-telemetry overhead within budget.")
    return 0


def check_fig3_backends(baseline_path, new_path, min_speedup):
    baseline = load(baseline_path)["fig3_sorting"]
    new = load(new_path)["fig3_sorting"]

    failures = []
    baseline_backends = set()
    for row in baseline.get("rows", []):
        baseline_backends.update(row.get("backends", {}))

    print(f"{'n':>10} {'backend':<10} {'ns/key':>10} {'vs pbsn':>9}  "
          f"(auto must be >= {min_speedup:.1f}x at n >= {MIN_AUTO_SPEEDUP_N})")
    seen_backends = set()
    for row in new["rows"]:
        n = row["n"]
        backends = row.get("backends")
        if backends is None:
            failures.append(f"n={n}: row has no per-backend results")
            continue
        unknown = set(backends) - KNOWN_BACKENDS
        for name in sorted(unknown):
            failures.append(f"n={n}: unknown backend row '{name}' "
                            f"(known: {', '.join(sorted(KNOWN_BACKENDS))})")
        seen_backends.update(backends)
        pbsn = backends.get("pbsn", {}).get("ns_per_key")
        for name in sorted(backends):
            ns = backends[name].get("ns_per_key")
            if ns is None:
                failures.append(f"n={n}: backend '{name}' has no ns_per_key")
                continue
            speedup = pbsn / ns if pbsn and ns > 0 else float("nan")
            print(f"{n:>10} {name:<10} {ns:>10.1f} {speedup:>8.1f}x")
        auto = backends.get("auto", {}).get("ns_per_key")
        if n >= MIN_AUTO_SPEEDUP_N:
            if auto is None or pbsn is None:
                failures.append(f"n={n}: auto/pbsn rows required at n >= "
                                f"{MIN_AUTO_SPEEDUP_N}")
            elif pbsn < min_speedup * auto:
                failures.append(
                    f"n={n}: auto ({auto:.1f} ns/key) is only "
                    f"{pbsn / auto:.2f}x faster than pbsn ({pbsn:.1f}); "
                    f"the gate requires >= {min_speedup:.1f}x")

    missing = baseline_backends - seen_backends
    for name in sorted(missing):
        failures.append(f"backend '{name}' present in the baseline is missing "
                        "from the new run")

    if failures:
        print("\nFAIL: per-backend fig3 gate:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("\nIf a backend was intentionally added/removed or the "
              "performance contract changed, update docs/SORT_BACKENDS.md "
              "and regenerate the baseline (see the comment in "
              "BENCH_sort.json).", file=sys.stderr)
        return 1
    print("\nOK: backend rows valid; planner speedup contract holds.")
    return 0


def check_service(baseline_path, new_path, rel_floor, tolerance,
                  latency_tolerance):
    baseline = load(baseline_path)["service"]
    new = load(new_path)["service"]

    failures = []
    base_rows = {row["streams"]: row for row in baseline["streams"]}
    new_rows = {row["streams"]: row for row in new["streams"]}
    print(f"{'streams':>10} {'baseline':>9} {'new':>9}  "
          f"(rel_single; floor {rel_floor:.2f} at >= "
          f"{REL_SINGLE_FLOOR_STREAMS} streams, slack {tolerance:.2f}x)")
    for streams, base_row in sorted(base_rows.items()):
        if streams not in new_rows:
            failures.append(f"streams={streams}: missing from new results")
            continue
        b = base_row["rel_single"]
        r = new_rows[streams]["rel_single"]
        flags = []
        if streams >= REL_SINGLE_FLOOR_STREAMS and r < rel_floor:
            flags.append("BELOW FLOOR")
            failures.append(
                f"streams={streams}: rel_single {r:.2f} < the {rel_floor:.2f} "
                "aggregate-throughput floor (docs/SERVICE.md)")
        if r < b / tolerance:
            flags.append("REGRESSED")
            failures.append(f"streams={streams}: rel_single {b:.2f} -> "
                            f"{r:.2f} (> {tolerance:.2f}x below baseline)")
        print(f"{streams:>10} {b:>9.2f} {r:>9.2f}  {' '.join(flags)}")

    b_mem = baseline["bytes_per_idle_stream"]
    n_mem = new["bytes_per_idle_stream"]
    print(f"\nbytes/idle stream: baseline {b_mem:.0f}, new {n_mem:.0f} "
          f"(limit {b_mem * tolerance:.0f})")
    if n_mem > b_mem * tolerance:
        failures.append(f"bytes_per_idle_stream {b_mem:.0f} -> {n_mem:.0f} "
                        f"(> {tolerance:.2f}x baseline)")

    b_p99 = baseline["batch_p99_call_seconds"]
    n_p99 = new["batch_p99_call_seconds"]
    print(f"batch-query p99:   baseline {b_p99 * 1e3:.1f} ms, new "
          f"{n_p99 * 1e3:.1f} ms (limit {b_p99 * latency_tolerance * 1e3:.1f} ms)")
    if n_p99 > b_p99 * latency_tolerance:
        failures.append(f"batch_p99_call_seconds {b_p99:.4f} -> {n_p99:.4f} "
                        f"(> {latency_tolerance:.2f}x baseline)")

    if failures:
        print("\nFAIL: StreamService benchmark gate:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("\nIf the change is intentional, regenerate the baseline: "
              "STREAMGPU_BENCH_JSON=BENCH_service.json "
              "build/bench/bench_service", file=sys.stderr)
        return 1
    print("\nOK: service throughput, registry memory, and query latency "
          "within tolerance.")
    return 0


def check_sketch(baseline_path, new_path, tolerance):
    baseline = load(baseline_path)["sketch"]
    new = load(new_path)["sketch"]

    def keyed(section):
        return {(row["sketch"], row["epsilon"]): row for row in section["rows"]}

    base_rows = keyed(baseline)
    new_rows = keyed(new)

    failures = []
    print(f"{'sketch':<8} {'epsilon':>8} {'bytes':>8} {'limit':>8} "
          f"{'observed':>10} {'stated':>10}  (bytes limit = baseline x "
          f"{tolerance:.2f})")
    for key, base_row in sorted(base_rows.items()):
        name, eps = key
        if key not in new_rows:
            failures.append(f"{name}@eps={eps}: missing from new results")
            continue
        row = new_rows[key]
        limit = base_row["summary_bytes"] * tolerance
        observed = row["observed_rel_error"]
        stated = row["stated_rel_error"]
        flags = []
        if row["summary_bytes"] > limit:
            flags.append("BYTES REGRESSED")
            failures.append(
                f"{name}@eps={eps}: summary_bytes "
                f"{base_row['summary_bytes']} -> {row['summary_bytes']} "
                f"(> {tolerance:.2f}x baseline)")
        if observed > stated:
            flags.append("BOUND VIOLATED")
            failures.append(
                f"{name}@eps={eps}: observed_rel_error {observed:.5f} exceeds "
                f"the stated bound {stated:.5f} — the honest-bound contract "
                "is broken, not just a perf regression")
        print(f"{name:<8} {eps:>8g} {row['summary_bytes']:>8} {limit:>8.0f} "
              f"{observed:>10.5f} {stated:>10.5f}  {' '.join(flags)}")

    if failures:
        print("\nFAIL: quantile-sketch shootout gate:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("\nIf a sketch's space/accuracy trade changed intentionally, "
              "regenerate the baseline: STREAMGPU_BENCH_JSON=BENCH_sketch.json "
              "build/bench/bench_fig7_quantiles.", file=sys.stderr)
        return 1
    print("\nOK: sketch summary sizes and honest error bounds hold.")
    return 0


def check_durable(baseline_path, new_path, overhead_limit, tolerance,
                  latency_tolerance):
    baseline = load(baseline_path)["durable"]
    new = load(new_path)["durable"]

    failures = []
    base_ingest = {row["cadence"]: row for row in baseline["ingest"]}
    print(f"{'cadence':<8} {'commits':>8} {'overhead':>9} {'snapshot B':>12} "
          f"{'limit B':>12}  (gated rows: overhead <= {overhead_limit:.2f}x)")
    for row in new["ingest"]:
        cadence = row["cadence"]
        flags = []
        gated = bool(row.get("gated"))
        if gated and row["overhead"] > overhead_limit:
            flags.append("OVERHEAD EXCEEDED")
            failures.append(
                f"cadence={cadence}: checkpointed/plain ingest ratio "
                f"{row['overhead']:.3f}x > the {overhead_limit:.2f}x budget "
                "(docs/DURABILITY.md) — a within-run ratio, so this is not "
                "runner noise")
        base_row = base_ingest.get(cadence)
        limit_bytes = ""
        if base_row is not None:
            limit = base_row["snapshot_bytes"] * tolerance
            limit_bytes = f"{limit:>12.0f}"
            if row["snapshot_bytes"] > limit:
                flags.append("BYTES REGRESSED")
                failures.append(
                    f"cadence={cadence}: snapshot_bytes "
                    f"{base_row['snapshot_bytes']} -> {row['snapshot_bytes']} "
                    f"(> {tolerance:.2f}x baseline)")
        print(f"{cadence:<8} {row['commits']:>8} {row['overhead']:>8.3f}x "
              f"{row['snapshot_bytes']:>12} {limit_bytes:>12}  "
              f"{'<- gated ' if gated else ''}{' '.join(flags)}")
    for cadence in base_ingest:
        if cadence not in {row["cadence"] for row in new["ingest"]}:
            failures.append(f"cadence={cadence}: missing from new results")

    base_restore = {row["streams"]: row for row in baseline["restore"]}
    new_restore = {row["streams"]: row for row in new["restore"]}
    print(f"\n{'streams':>10} {'baseline s':>11} {'new s':>8} {'limit s':>8}  "
          f"(restore wall-clock, loose {latency_tolerance:.1f}x)")
    for streams, base_row in sorted(base_restore.items()):
        if streams not in new_restore:
            failures.append(f"streams={streams}: missing from new results")
            continue
        row = new_restore[streams]
        limit = base_row["restore_seconds"] * latency_tolerance
        flag = ""
        if row["restore_seconds"] > limit:
            flag = "REGRESSED"
            failures.append(
                f"streams={streams}: restore_seconds "
                f"{base_row['restore_seconds']:.2f} -> "
                f"{row['restore_seconds']:.2f} "
                f"(> {latency_tolerance:.1f}x baseline)")
        print(f"{streams:>10} {base_row['restore_seconds']:>11.2f} "
              f"{row['restore_seconds']:>8.2f} {limit:>8.2f}  {flag}")

    if failures:
        print("\nFAIL: durability benchmark gate:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("\nIf the cost changed intentionally, regenerate the baseline: "
              "STREAMGPU_BENCH_JSON=BENCH_durable.json "
              "build/bench/bench_durable (Release build).", file=sys.stderr)
        return 1
    print("\nOK: checkpoint overhead, snapshot size, and restore time "
          "within tolerance.")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+",
                        help="baseline.json new.json (two-input modes), "
                             "engine.json fig3.json (merge mode), or a single "
                             "fig3.json (--fig3-obs-overhead)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="max allowed new/baseline rel_memcpy ratio "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--fig3-overhead", action="store_true",
                        help="gate bench_fig3_sorting rel_memcpy (disabled-"
                             "observability hot-path overhead) instead of "
                             "the engine kernels")
    parser.add_argument("--overhead-tolerance", type=float,
                        default=DEFAULT_OVERHEAD_TOLERANCE,
                        help="max allowed geomean fig3 rel_memcpy ratio "
                             f"(default {DEFAULT_OVERHEAD_TOLERANCE})")
    parser.add_argument("--fig3-obs-overhead", action="store_true",
                        help="gate the ENABLED-telemetry overhead from the "
                             "paired obs_rel_memcpy/rel_memcpy rows of one "
                             "fig3 run (single input file)")
    parser.add_argument("--fig3-backends", action="store_true",
                        help="validate per-backend fig3 rows (unknown "
                             "backends fail) and gate the auto-planner "
                             "speedup over PBSN at large n")
    parser.add_argument("--min-auto-speedup", type=float,
                        default=DEFAULT_MIN_AUTO_SPEEDUP,
                        help="required pbsn/auto ns/key ratio at n >= 1M "
                             f"(default {DEFAULT_MIN_AUTO_SPEEDUP})")
    parser.add_argument("--service", action="store_true",
                        help="gate bench_service results against the "
                             "committed BENCH_service.json baseline")
    parser.add_argument("--sketch", action="store_true",
                        help="gate the bench_fig7_quantiles sketch-shootout "
                             "rows against the committed BENCH_sketch.json "
                             "baseline")
    parser.add_argument("--durable", action="store_true",
                        help="gate bench_durable results (checkpoint ingest "
                             "overhead, snapshot size, restore time) against "
                             "the committed BENCH_durable.json baseline")
    parser.add_argument("--overhead-limit", type=float,
                        default=DEFAULT_OVERHEAD_LIMIT,
                        help="max checkpointed/plain ingest ratio for gated "
                             f"bench_durable rows (default {DEFAULT_OVERHEAD_LIMIT})")
    parser.add_argument("--rel-single-floor", type=float,
                        default=DEFAULT_REL_SINGLE_FLOOR,
                        help="min service/dedicated ingest ratio at >= "
                             f"{REL_SINGLE_FLOOR_STREAMS} streams "
                             f"(default {DEFAULT_REL_SINGLE_FLOOR})")
    parser.add_argument("--latency-tolerance", type=float,
                        default=DEFAULT_LATENCY_TOLERANCE,
                        help="max allowed new/baseline batch-query p99 ratio "
                             f"(default {DEFAULT_LATENCY_TOLERANCE})")
    parser.add_argument("--merge", action="store_true",
                        help="merge engine+fig3 JSON into a new baseline")
    parser.add_argument("-o", "--output", default="BENCH_sort.json",
                        help="merge-mode output path (default BENCH_sort.json)")
    args = parser.parse_args()

    if args.fig3_obs_overhead:
        if len(args.inputs) != 1:
            parser.error("--fig3-obs-overhead takes exactly one fig3.json")
        return check_fig3_obs_overhead(args.inputs[0],
                                       args.overhead_tolerance)
    if len(args.inputs) != 2:
        parser.error("this mode takes exactly two input files")
    if args.merge:
        return merge(args.inputs[0], args.inputs[1], args.output)
    if args.service:
        return check_service(args.inputs[0], args.inputs[1],
                             args.rel_single_floor, args.tolerance,
                             args.latency_tolerance)
    if args.sketch:
        return check_sketch(args.inputs[0], args.inputs[1], args.tolerance)
    if args.durable:
        return check_durable(args.inputs[0], args.inputs[1],
                             args.overhead_limit, args.tolerance,
                             args.latency_tolerance)
    if args.fig3_overhead:
        return check_fig3_overhead(args.inputs[0], args.inputs[1],
                                   args.overhead_tolerance)
    if args.fig3_backends:
        return check_fig3_backends(args.inputs[0], args.inputs[1],
                                   args.min_auto_speedup)
    return check(args.inputs[0], args.inputs[1], args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
