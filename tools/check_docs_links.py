#!/usr/bin/env python3
"""Check documentation cross-references and CLI flags.

Usage:
  check_docs_links.py [--repo-root PATH]

Two classes of doc drift have bitten this repo before (a stale CHECK-abort
API description and CLI flags documented before they existed), so CI runs
this on every build:

1. Relative markdown links in README.md and docs/*.md must point at files
   that exist in the repo (anchors are stripped; external http(s)/mailto
   links are ignored).

2. Every ``--flag`` token on a line that mentions ``streamgpu_cli`` — in any
   checked markdown file — must be a flag the CLI actually parses (extracted
   from tools/streamgpu_cli.cc string literals), so usage examples cannot
   drift from the binary.

Exit 0 when clean; exit 1 listing every broken reference.
"""

import argparse
import pathlib
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"(--[a-z][a-z0-9-]*)")
CLI_FLAG_RE = re.compile(r'"(--[a-z][a-z0-9-]*)"')
# Usage strings list alternatives like "--sort-backend auto|pbsn|..."; also
# accept flags documented in the CLI's header comment.
CLI_COMMENT_FLAG_RE = re.compile(r"(--[a-z][a-z0-9-]*)")


def doc_files(root):
    files = [root / "README.md"]
    files += sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def cli_flags(root):
    """Flags the CLI parses or documents, from its source."""
    source = (root / "tools" / "streamgpu_cli.cc").read_text()
    flags = set(CLI_FLAG_RE.findall(source))
    # The Usage() text and header comment enumerate value alternatives and
    # aliases; anything printed by the binary itself counts as documented.
    flags.update(CLI_COMMENT_FLAG_RE.findall(source))
    return flags


def check_links(path, root, failures):
    text = path.read_text()
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            failures.append(f"{path.relative_to(root)}: broken link -> {target}")


def check_cli_flags(path, flags, root, failures):
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if "streamgpu_cli" not in line:
            continue
        for flag in FLAG_RE.findall(line):
            if flag not in flags:
                failures.append(
                    f"{path.relative_to(root)}:{lineno}: flag {flag} is not "
                    "parsed by tools/streamgpu_cli.cc")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo-root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args()
    root = pathlib.Path(args.repo_root).resolve()

    files = doc_files(root)
    if not files:
        print("FAIL: no documentation files found", file=sys.stderr)
        return 1
    flags = cli_flags(root)

    failures = []
    for path in files:
        check_links(path, root, failures)
        check_cli_flags(path, flags, root, failures)

    if failures:
        print("FAIL: documentation drift:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"OK: {len(files)} docs checked, links and CLI flags all valid "
          f"({len(flags)} known flags).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
