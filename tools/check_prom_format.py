#!/usr/bin/env python3
"""Validate a Prometheus text-exposition file (promtool-style, stdlib only).

Checks the subset of exposition format 0.0.4 rules this project emits
(docs/OBSERVABILITY.md):

  * every non-comment line parses as  name[{labels}] value
  * metric and label names match the Prometheus grammar
  * label values use only the three legal escapes (\\\\, \\", \\n)
  * every sample belongs to a family announced by a # TYPE line, honoring
    the conventional suffixes (_total for counters; _bucket/_sum/_count for
    histograms; _sum/_count for summaries)
  * exactly one HELP and one TYPE per family, HELP before TYPE before samples
  * histogram buckets are cumulative, le-sorted, and end at +Inf with a
    count equal to the family's _count sample
  * summary quantile labels are parseable floats in [0, 1]
  * no duplicate series (same name + label set)
  * values parse as Go-style floats (including +Inf/-Inf/NaN)

Usage: check_prom_format.py FILE [FILE...]
Exits non-zero with a line-numbered report on the first malformed file.
"""

import math
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# An escaped label value: any run of non-special chars or a legal escape.
LABEL_VALUE_RE = re.compile(r'^(?:[^"\\\n]|\\\\|\\"|\\n)*$')
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\.)*)"')


class FormatError(Exception):
    pass


def parse_value(raw):
    if raw in ("+Inf", "Inf"):
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise FormatError(f"bad sample value {raw!r}")


def parse_labels(raw):
    """Parses the inside of a label block; returns a (name, value) tuple list."""
    labels = []
    pos = 0
    while pos < len(raw):
        m = LABEL_RE.match(raw, pos)
        if m is None:
            raise FormatError(f"bad label block at offset {pos}: {raw!r}")
        if not LABEL_VALUE_RE.match(m.group(2)):
            raise FormatError(f"illegal escape in label value {m.group(2)!r}")
        labels.append((m.group(1), m.group(2)))
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                raise FormatError(f"expected ',' between labels in {raw!r}")
            pos += 1
    names = [n for n, _ in labels]
    if len(names) != len(set(names)):
        raise FormatError(f"duplicate label name in {raw!r}")
    return labels


def family_of(name, types):
    """Maps a sample name to its announced family, honoring type suffixes."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if base in types:
                expected = {
                    "_total": ("counter",),
                    "_bucket": ("histogram",),
                    "_sum": ("histogram", "summary"),
                    "_count": ("histogram", "summary"),
                }[suffix]
                if types[base] not in expected:
                    raise FormatError(
                        f"{name}: suffix {suffix} not valid for {types[base]} {base}"
                    )
                return base
    raise FormatError(f"sample {name} has no preceding # TYPE line")


def check_file(path):
    types = {}          # family -> type
    helps = set()
    samples_seen = set()  # (name, frozenset(labels)) for duplicate detection
    buckets = {}        # family -> list of (le, count)
    counts = {}         # family -> _count value (unlabeled or per label set)
    announced_after_sample = set()

    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            try:
                if not line.strip():
                    continue
                if line.startswith("# HELP "):
                    parts = line.split(" ", 3)
                    if len(parts) < 4:
                        raise FormatError("HELP line needs a name and text")
                    name = parts[2]
                    if not METRIC_NAME_RE.match(name):
                        raise FormatError(f"bad family name in HELP: {name!r}")
                    if name in helps:
                        raise FormatError(f"duplicate HELP for {name}")
                    helps.add(name)
                    continue
                if line.startswith("# TYPE "):
                    parts = line.split(" ")
                    if len(parts) != 4:
                        raise FormatError("TYPE line must be '# TYPE name type'")
                    name, mtype = parts[2], parts[3]
                    if not METRIC_NAME_RE.match(name):
                        raise FormatError(f"bad family name in TYPE: {name!r}")
                    if mtype not in ("counter", "gauge", "histogram", "summary", "untyped"):
                        raise FormatError(f"unknown metric type {mtype!r}")
                    if name in types:
                        raise FormatError(f"duplicate TYPE for {name}")
                    if name in announced_after_sample:
                        raise FormatError(f"TYPE for {name} after its samples")
                    types[name] = mtype
                    continue
                if line.startswith("#"):
                    continue  # plain comment

                m = SAMPLE_RE.match(line)
                if m is None:
                    raise FormatError(f"unparseable sample line: {line!r}")
                name = m.group("name")
                value = parse_value(m.group("value"))
                labels = parse_labels(m.group("labels")) if m.group("labels") else []
                family = family_of(name, types)
                announced_after_sample.add(family)

                series = (name, frozenset(labels))
                if series in samples_seen:
                    raise FormatError(f"duplicate series {name}{dict(labels)}")
                samples_seen.add(series)

                if types[family] == "histogram" and name.endswith("_bucket"):
                    le = dict(labels).get("le")
                    if le is None:
                        raise FormatError(f"{name}: histogram bucket without le label")
                    le_value = math.inf if le == "+Inf" else parse_value(le)
                    buckets.setdefault(family, []).append((le_value, value))
                if name.endswith("_count") and types[family] in ("histogram", "summary"):
                    key = frozenset(kv for kv in labels if kv[0] != "quantile")
                    counts[(family, key)] = value
                if types[family] == "summary" and name == family:
                    q = dict(labels).get("quantile")
                    if q is None:
                        raise FormatError(f"{name}: summary sample without quantile label")
                    qv = parse_value(q)
                    if not (0.0 <= qv <= 1.0):
                        raise FormatError(f"{name}: quantile {q} outside [0, 1]")
                if types[family] == "counter" and value < 0:
                    raise FormatError(f"{name}: negative counter value {value}")
            except FormatError as err:
                raise FormatError(f"{path}:{lineno}: {err}") from None

    # Cross-line checks: bucket monotonicity and the +Inf == _count law.
    for family, entries in buckets.items():
        les = [le for le, _ in entries]
        if les != sorted(les):
            raise FormatError(f"{path}: {family}: buckets not in ascending le order")
        values = [v for _, v in entries]
        if values != sorted(values):
            raise FormatError(f"{path}: {family}: bucket counts not cumulative")
        if not entries or entries[-1][0] != math.inf:
            raise FormatError(f"{path}: {family}: missing le=\"+Inf\" bucket")
        total = counts.get((family, frozenset()))
        if total is not None and entries[-1][1] != total:
            raise FormatError(
                f"{path}: {family}: +Inf bucket {entries[-1][1]} != _count {total}"
            )

    for family in types:
        if family not in helps:
            raise FormatError(f"{path}: family {family} has TYPE but no HELP")

    return len(samples_seen)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: check_prom_format.py FILE [FILE...]", file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            n = check_file(path)
        except FormatError as err:
            print(f"FAIL: {err}", file=sys.stderr)
            return 1
        except OSError as err:
            print(f"FAIL: {err}", file=sys.stderr)
            return 1
        print(f"OK: {path}: {n} series valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
