#!/usr/bin/env python3
"""Kill-matrix recovery harness for the durability subsystem.

Drives build/tools/streamgpu_cli through a matrix of crash cells and checks
the headline durability claim end to end: a run that is killed mid-stream
(including *inside* a checkpoint commit), restarted with `restore`, and run
to completion must produce a report that is byte-identical to an
uninterrupted run with the same flags.

Each cell is:

  1. reference run        -> ref report (no kill, same flags)
  2. probe run            -> counts checkpoint commits so deterministic
                             crash ordinals land mid-stream
  3. kill run             -> STREAMGPU_DURABLE_CRASH_AT=<point>:<ordinal>
                             (exits 42) or a timing-randomized SIGKILL
  4. restore run          -> `streamgpu_cli restore <mode> ...` must exit 0
  5. byte-diff            -> restored report == reference report

Crash points (see src/durable/checkpoint.cc) cover every step of the
torn-write protocol: snapshot-partial (half-written .tmp), pre-rename
(complete .tmp, no rename), pre-manifest (renamed snapshot, no manifest
entry), manifest-partial (half-appended manifest record). The `double`
cell additionally crashes the *restore* run inside its own first commit,
then restores a second time -- exercising the manifest self-healing path.

Exit code 42 is the CLI's deliberate crash-injection exit; anything else
from a kill run (other than the SIGKILL we sent) fails the cell.

Usage:
  python3 tools/crash_harness.py --cli build/tools/streamgpu_cli
  python3 tools/crash_harness.py --cli ... --workers 4 --plans bitflip
  python3 tools/crash_harness.py --cli ... --modes serve --list
"""

import argparse
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time

CRASH_POINTS = ["snapshot-partial", "pre-rename", "pre-manifest", "manifest-partial"]

MODE_FLAGS = {
    "quantiles": [
        "--n", "150000", "--epsilon", "0.005", "--seed", "11",
    ],
    "frequencies": [
        "--n", "150000", "--epsilon", "0.005", "--seed", "13",
        "--support", "0.01",
    ],
    "serve": [
        "--streams", "40", "--tenants", "5", "--n", "4000",
        "--epsilon", "0.01", "--seed", "17", "--shard-batch", "2000",
    ],
}

# Checkpoint cadence (windows between commits) for the checkpointed runs;
# the uninterrupted reference runs without checkpointing at all, so the
# byte-diff also proves checkpointing does not perturb the answers.
MODE_CADENCE = {"quantiles": "8", "frequencies": "8", "serve": "40"}

# Fault injection lives on the estimator ingest path (GPU pass simulation),
# so fault-plan cells run the estimator modes only.  With CPU fallback on
# (the default) a corrupted pass is recomputed exactly, so the report must
# stay byte-identical to the fault-free reference of the *same* plan.
BITFLIP_FLAGS = ["--backend", "gpu", "--fault-plan", "pass:bitflip:every=5",
                 "--fault-seed", "7"]

RUN_TIMEOUT_S = 300


def log(msg):
    print(msg, flush=True)


def run_cli(cmd, env_extra=None, timeout=RUN_TIMEOUT_S):
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(cmd, env=env, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, timeout=timeout, text=True)


def read_bytes(path):
    with open(path, "rb") as f:
        return f.read()


class Cell:
    def __init__(self, mode, workers, plan, point):
        self.mode = mode
        self.workers = workers
        self.plan = plan
        self.point = point  # crash point name, "sigkill", or "double"

    @property
    def name(self):
        return f"{self.mode}-w{self.workers}-{self.plan}-{self.point}"

    def base_flags(self):
        flags = list(MODE_FLAGS[self.mode]) + ["--workers", str(self.workers)]
        if self.plan == "bitflip":
            flags += BITFLIP_FLAGS
        return flags

    def checkpoint_flags(self, ckpt_dir):
        return ["--checkpoint-dir", ckpt_dir,
                "--checkpoint-every-windows", MODE_CADENCE[self.mode]]


class Harness:
    def __init__(self, cli, workdir, rng):
        self.cli = cli
        self.workdir = workdir
        self.rng = rng
        self.ref_cache = {}    # (mode, workers, plan) -> report bytes
        self.commit_cache = {}  # (mode, workers, plan) -> probe commit count

    def path(self, *parts):
        return os.path.join(self.workdir, *parts)

    def reference(self, cell):
        key = (cell.mode, cell.workers, cell.plan)
        if key in self.ref_cache:
            return self.ref_cache[key]
        report = self.path(f"ref-{cell.mode}-w{cell.workers}-{cell.plan}.txt")
        cmd = [self.cli, cell.mode] + cell.base_flags() + ["--report-out", report]
        proc = run_cli(cmd)
        if proc.returncode != 0:
            raise RuntimeError(
                f"reference run failed ({proc.returncode}):\n{proc.stderr}")
        self.ref_cache[key] = read_bytes(report)
        return self.ref_cache[key]

    def commit_count(self, cell):
        """Full checkpointed run; parse '# checkpoints: N -> dir' from stderr."""
        key = (cell.mode, cell.workers, cell.plan)
        if key in self.commit_cache:
            return self.commit_cache[key]
        ckpt = self.path(f"probe-{cell.name}")
        cmd = [self.cli, cell.mode] + cell.base_flags() + cell.checkpoint_flags(ckpt)
        proc = run_cli(cmd)
        if proc.returncode != 0:
            raise RuntimeError(f"probe run failed ({proc.returncode}):\n{proc.stderr}")
        count = None
        for line in proc.stderr.splitlines():
            if line.startswith("# checkpoints:"):
                count = int(line.split(":")[1].split("->")[0].strip())
        shutil.rmtree(ckpt, ignore_errors=True)
        if not count:
            raise RuntimeError(
                f"probe run for {cell.name} wrote no checkpoints -- "
                f"cadence misconfigured?\n{proc.stderr}")
        self.commit_cache[key] = count
        return count

    def kill_run(self, cell, ckpt_dir):
        """Start the run and kill it; returns a human-readable outcome."""
        cmd = [self.cli, cell.mode] + cell.base_flags() + cell.checkpoint_flags(ckpt_dir)
        if cell.point == "sigkill":
            proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL,
                                    stderr=subprocess.DEVNULL)
            time.sleep(self.rng.uniform(0.05, 0.45))
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=RUN_TIMEOUT_S)
            if proc.returncode == -signal.SIGKILL:
                return "SIGKILLed mid-run"
            if proc.returncode == 0:
                return "completed before kill (restore must still match)"
            raise RuntimeError(f"kill run exited {proc.returncode} before SIGKILL")
        ordinal = self.commit_count(cell) // 2
        env = {"STREAMGPU_DURABLE_CRASH_AT": f"{cell.point}:{ordinal}"}
        proc = run_cli(cmd, env_extra=env)
        if proc.returncode != 42:
            raise RuntimeError(
                f"expected deliberate crash exit 42 at {cell.point}:{ordinal}, "
                f"got {proc.returncode}:\n{proc.stderr}")
        return f"crashed at {cell.point}:{ordinal} (exit 42)"

    def restore_run(self, cell, ckpt_dir, report, crash_env=None):
        cmd = ([self.cli, "restore", cell.mode] + cell.base_flags() +
               cell.checkpoint_flags(ckpt_dir) + ["--report-out", report])
        proc = run_cli(cmd, env_extra=crash_env)
        return proc

    def run_cell(self, cell):
        ref = self.reference(cell)
        ckpt = self.path(f"ckpt-{cell.name}")
        shutil.rmtree(ckpt, ignore_errors=True)
        report = self.path(f"out-{cell.name}.txt")

        if cell.point == "double":
            # Crash inside the first run, crash the restore inside its own
            # first commit, then restore again: the second restore must heal
            # the manifest tail and still reproduce the reference bit-for-bit.
            outcome = []
            env = {"STREAMGPU_DURABLE_CRASH_AT":
                   f"manifest-partial:{self.commit_count(cell) // 2}"}
            cmd = ([self.cli, cell.mode] + cell.base_flags() +
                   cell.checkpoint_flags(ckpt))
            proc = run_cli(cmd, env_extra=env)
            if proc.returncode != 42:
                raise RuntimeError(
                    f"first crash: expected 42, got {proc.returncode}:\n{proc.stderr}")
            outcome.append("crash#1 manifest-partial")
            proc = self.restore_run(cell, ckpt, report,
                                    crash_env={"STREAMGPU_DURABLE_CRASH_AT":
                                               "pre-rename:0"})
            if proc.returncode != 42:
                raise RuntimeError(
                    f"second crash: expected 42, got {proc.returncode}:\n{proc.stderr}")
            outcome.append("crash#2 pre-rename during restore")
            outcome_str = " -> ".join(outcome)
        else:
            outcome_str = self.kill_run(cell, ckpt)

        proc = self.restore_run(cell, ckpt, report)
        if proc.returncode != 0:
            raise RuntimeError(
                f"restore exited {proc.returncode}:\n{proc.stderr}")
        restored = read_bytes(report)
        if restored != ref:
            raise RuntimeError(
                "restored report differs from uninterrupted reference\n"
                f"--- reference ---\n{ref.decode(errors='replace')}\n"
                f"--- restored ---\n{restored.decode(errors='replace')}")
        shutil.rmtree(ckpt, ignore_errors=True)
        os.remove(report)
        return outcome_str


def build_cells(modes, workers_list, plans):
    cells = []
    for mode in modes:
        for workers in workers_list:
            for plan in plans:
                if plan == "bitflip" and mode == "serve":
                    continue  # no fault injection on the service path
                points = list(CRASH_POINTS) + ["sigkill"]
                for point in points:
                    cells.append(Cell(mode, workers, plan, point))
                if mode == "quantiles" and plan == "none":
                    cells.append(Cell(mode, workers, plan, "double"))
    return cells


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--cli", required=True, help="path to streamgpu_cli binary")
    ap.add_argument("--modes", default="quantiles,frequencies,serve",
                    help="comma list of CLI modes to exercise")
    ap.add_argument("--workers", default="1,4",
                    help="comma list of worker counts (matrix axis)")
    ap.add_argument("--plans", default="none,bitflip",
                    help="comma list of fault plans: none, bitflip")
    ap.add_argument("--seed", type=int, default=20260809,
                    help="RNG seed for the timing-randomized SIGKILL cells")
    ap.add_argument("--workdir", default=None,
                    help="scratch dir (default: fresh temp dir, removed on pass)")
    ap.add_argument("--list", action="store_true",
                    help="print the cell matrix and exit")
    args = ap.parse_args()

    cells = build_cells([m.strip() for m in args.modes.split(",") if m.strip()],
                        [int(w) for w in args.workers.split(",")],
                        [p.strip() for p in args.plans.split(",") if p.strip()])
    if args.list:
        for cell in cells:
            log(cell.name)
        return 0

    cli = os.path.abspath(args.cli)
    if not os.access(cli, os.X_OK):
        log(f"error: {cli} is not an executable")
        return 2

    own_workdir = args.workdir is None
    workdir = args.workdir or tempfile.mkdtemp(prefix="crash-harness-")
    os.makedirs(workdir, exist_ok=True)
    harness = Harness(cli, workdir, random.Random(args.seed))

    failures = 0
    t0 = time.time()
    for i, cell in enumerate(cells, 1):
        try:
            outcome = harness.run_cell(cell)
            log(f"[{i:3d}/{len(cells)}] PASS {cell.name}: {outcome}; "
                "restored report bit-identical")
        except Exception as err:  # noqa: BLE001 -- report and keep going
            failures += 1
            log(f"[{i:3d}/{len(cells)}] FAIL {cell.name}: {err}")
    log(f"kill matrix: {len(cells) - failures}/{len(cells)} cells passed "
        f"in {time.time() - t0:.1f}s")
    if failures == 0 and own_workdir:
        shutil.rmtree(workdir, ignore_errors=True)
    elif failures:
        log(f"artifacts kept in {workdir}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
