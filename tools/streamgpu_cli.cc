// streamgpu command-line tool: run quantile / frequency estimation or the
// sorting backends over a generated stream or a file of values, from the
// shell.
//
// Usage:
//   streamgpu_cli quantiles   [options] --phi 0.5,0.9,0.99
//   streamgpu_cli frequencies [options] --support 0.01
//   streamgpu_cli sort        [options]
//   streamgpu_cli serve       [options] --streams 1000 --tenants 10
//   streamgpu_cli merge       SHARD.bin [SHARD.bin ...] --phi 0.5 --support 0.01
//   streamgpu_cli restore     <quantiles|frequencies|serve> [options]
//
// Common options:
//   --input PATH           read float values (text, one per line) from PATH
//   --generate DIST        synthesize the stream: uniform | zipf | sorted |
//                          network | finance   (default zipf)
//   --n COUNT              generated stream length       (default 1000000)
//   --seed SEED            generator seed                (default 1)
//   --epsilon EPS          approximation parameter       (default 0.001)
//   --quantile-sketch K    whole-history quantile backend: gk | gk-adaptive |
//                          kll (default gk; docs/SKETCHES.md)
//   --summary-out PATH     write the mergeable wire summary (sketch/serialize.h
//                          envelope) to PATH: the quantile summary under
//                          `quantiles`, a same-epsilon Misra-Gries summary
//                          under `frequencies`, the merged summary under
//                          `merge` — the shard artifact `merge` consumes
//   --sort-backend NAME    auto | pbsn | sample | bitonic | cpu | radix |
//                          stdsort                       (default pbsn).
//                          "auto" runs the cost-model planner
//                          (docs/SORT_BACKENDS.md); --backend is a legacy
//                          alias (gpu == pbsn)
//   --sliding W            sliding-window width          (default off)
//   --workers N            sort-worker threads; >= 2 enables the parallel
//                          ingest pipeline                (default 1: serial)
//   --in-flight M          max windows buffered in the pipeline (default auto)
//   --expect-range LO,HI   a-priori value range, validated against the
//                          backend's precision            (default unknown)
//
// Observability (docs/OBSERVABILITY.md):
//   --metrics-out PATH     write the metrics snapshot to PATH
//   --metrics-format FMT   snapshot serialization: json (the documented
//                          schema) or prom (Prometheus text exposition)
//                          (default json)
//   --metrics-export-every SECS
//                          continuously re-export the snapshot to
//                          --metrics-out every SECS seconds from a
//                          background thread (atomic rename; scrape-safe)
//   --flight-out PATH      arm the fault flight recorder: crash-path dumps
//                          (quarantine, drain failure, degrade) land at
//                          PATH; a shutdown dump is written if nothing
//                          went wrong
//   --trace-out PATH       write a Chrome trace-event JSON to PATH
//                          (chrome://tracing or https://ui.perfetto.dev)
//   --trace-sample-every K record every K-th span per stage (default 1: all)
//
// Multi-tenant service (serve command only; docs/SERVICE.md):
//   --streams N            streams multiplexed onto the worker pool
//                          (default 1000); --n is the per-stream length
//   --tenants T            tenants the streams are spread across (default 10)
//   --shed-capacity CAP    enable load shedding: per-shard ingress backlog
//                          cap in elements (default 0: block, never shed)
//   --shard-batch N        elements a shard coalesces before dispatching one
//                          micro-batch (default 0: 64k). Smaller batches
//                          bound per-stream merge latency — and let
//                          --checkpoint-every-windows fire mid-ingest on
//                          runs smaller than the default micro-batch
//
// Merging shard summaries (merge command only; docs/SKETCHES.md):
//   positional arguments   shard summary files (one envelope per file, as
//                          written by --summary-out); all shards must carry
//                          the same sketch type. Quantile shards (gk | kll)
//                          answer --phi; frequency shards (misra-gries |
//                          count-min) answer --support. Shards are folded in
//                          canonical byte order, so the merged answer is
//                          bit-identical for any argument order.
//
// Durability (docs/DURABILITY.md):
//   --checkpoint-dir DIR   crash-consistent checkpoint directory. With
//                          quantiles / frequencies the estimator snapshots
//                          into it; with serve the whole service does. The
//                          `restore` command resumes from the newest usable
//                          snapshot in DIR — it re-reads the same input
//                          (identical --input or --generate/--n/--seed) and
//                          replays only the un-checkpointed suffix, so the
//                          report is bit-identical to an uninterrupted run.
//                          When DIR holds no usable checkpoint, restore
//                          starts fresh (first run after provisioning).
//   --checkpoint-every-windows N
//                          snapshot cadence: checkpoint after every N merged
//                          windows (default 0: only what `restore` finds
//                          from a previous run; estimator modes then never
//                          checkpoint)
//   --report-out PATH      write the deterministic report lines (quantile
//                          answers, heavy hitters, coverage — no timings)
//                          to PATH; the artifact tools/crash_harness.py
//                          diffs between a killed-and-restored run and an
//                          uninterrupted one
//
// Fault injection (docs/ROBUSTNESS.md):
//   --fault-plan SPEC      deterministic fault plan, e.g.
//                          "pass:bitflip:every=5;queue:stall:p=0.01,stall_us=200"
//                          (sites upload|pass|readback|queue; kinds
//                          bitflip|nan|half|lost|stall)
//   --fault-seed SEED      fault-plan RNG seed             (default 1)
//   --fault-retries N      sort retries before fallback/quarantine (default 3)
//   --no-cpu-fallback      quarantine unrecoverable windows instead of
//                          re-sorting them on the CPU
//   --drain-deadline SECS  fail with kDeadlineExceeded if the pipeline makes
//                          no progress for SECS seconds    (default 0: wait)
//
// Invalid configurations (bad epsilon, window/backend mismatches, ...) are
// reported on stderr and exit with status 2.
//
// Examples:
//   streamgpu_cli quantiles --generate finance --n 500000 --phi 0.5,0.99
//   streamgpu_cli frequencies --generate zipf --support 0.02 --sort-backend cpu
//   streamgpu_cli frequencies --n 4000000 --sort-backend auto --workers 4
//       --metrics-out metrics.json --trace-out trace.json  (one command line)
//   streamgpu_cli sort --n 262144 --sort-backend pbsn

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/frequency_estimator.h"
#include "durable/checkpoint.h"
#include "sketch/combiner.h"
#include "sketch/misra_gries.h"
#include "sketch/quantile_sketch.h"
#include "sketch/serialize.h"
#include "core/instrumentation.h"
#include "core/quantile_estimator.h"
#include "obs/exporter.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "service/stream_service.h"
#include "stream/generator.h"

namespace {

using namespace streamgpu;

struct CliOptions {
  std::string command;
  std::string input_path;
  std::string distribution = "zipf";
  std::size_t n = 1'000'000;
  std::uint64_t seed = 1;
  double epsilon = 0.001;
  std::string backend = "pbsn";
  std::uint64_t sliding = 0;
  int workers = 1;
  int in_flight = 0;
  std::vector<double> phis = {0.25, 0.5, 0.75, 0.9, 0.99};
  double support = 0.01;
  float expect_min = 0;
  float expect_max = 0;
  std::string metrics_out;
  std::string metrics_format = "json";
  double metrics_export_every = 0;
  std::string flight_out;
  std::string trace_out;
  std::uint64_t trace_sample_every = 1;
  std::string fault_plan;
  std::uint64_t fault_seed = 1;
  int fault_retries = 3;
  bool cpu_fallback = true;
  double drain_deadline = 0;
  std::uint64_t streams = 1000;
  std::uint64_t tenants = 10;
  std::size_t shed_capacity = 0;
  std::size_t shard_batch = 0;
  std::string quantile_sketch = "gk";
  std::string summary_out;
  std::string checkpoint_dir;
  std::uint64_t checkpoint_every_windows = 0;
  std::string report_out;
  bool restore = false;  // `restore` command: resume `command` from a checkpoint
  std::vector<std::string> shard_files;  // merge command positionals
};

[[noreturn]] void Usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: streamgpu_cli <quantiles|frequencies|sort|serve> [options]\n"
               "       streamgpu_cli merge SHARD.bin [SHARD.bin ...] [--phi ...|--support S]\n"
               "       streamgpu_cli restore <quantiles|frequencies|serve> [options]\n"
               "  --input PATH | --generate uniform|zipf|sorted|network|finance\n"
               "  --n COUNT --seed SEED --epsilon EPS\n"
               "  --quantile-sketch gk|gk-adaptive|kll --summary-out PATH\n"
               "  --sort-backend auto|pbsn|sample|bitonic|cpu|radix|stdsort\n"
               "  --sliding W\n"
               "  --workers N --in-flight M --expect-range LO,HI\n"
               "  --metrics-out PATH --metrics-format json|prom\n"
               "  --metrics-export-every SECS --flight-out PATH\n"
               "  --trace-out PATH --trace-sample-every K\n"
               "  --checkpoint-dir DIR --checkpoint-every-windows N\n"
               "  --report-out PATH\n"
               "  --fault-plan SPEC --fault-seed SEED --fault-retries N\n"
               "  --no-cpu-fallback --drain-deadline SECS\n"
               "  --phi P1,P2,...    (quantiles)\n"
               "  --support S        (frequencies)\n"
               "  --streams N --tenants T --shed-capacity CAP --shard-batch N  (serve)\n");
  std::exit(2);
}

std::vector<double> ParseDoubleList(const std::string& raw) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start < raw.size()) {
    std::size_t end = raw.find(',', start);
    if (end == std::string::npos) end = raw.size();
    out.push_back(std::strtod(raw.substr(start, end - start).c_str(), nullptr));
    start = end + 1;
  }
  return out;
}

CliOptions ParseArgs(int argc, char** argv) {
  if (argc < 2) Usage("missing command");
  CliOptions opt;
  opt.command = argv[1];
  int first = 2;
  if (opt.command == "restore") {
    if (argc < 3) Usage("restore needs a mode: quantiles | frequencies | serve");
    opt.restore = true;
    opt.command = argv[2];
    if (opt.command != "quantiles" && opt.command != "frequencies" &&
        opt.command != "serve") {
      Usage("restore supports the quantiles, frequencies, and serve modes");
    }
    first = 3;
  }
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--input") {
      opt.input_path = next();
    } else if (flag == "--generate") {
      opt.distribution = next();
    } else if (flag == "--n") {
      opt.n = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--seed") {
      opt.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--epsilon") {
      opt.epsilon = std::strtod(next().c_str(), nullptr);
    } else if (flag == "--sort-backend" || flag == "--backend") {
      // --backend is the pre-planner spelling, kept as an alias.
      opt.backend = next();
    } else if (flag == "--sliding") {
      opt.sliding = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--workers") {
      opt.workers = static_cast<int>(std::strtol(next().c_str(), nullptr, 10));
    } else if (flag == "--in-flight") {
      opt.in_flight = static_cast<int>(std::strtol(next().c_str(), nullptr, 10));
    } else if (flag == "--expect-range") {
      const auto range = ParseDoubleList(next());
      if (range.size() != 2) Usage("--expect-range needs LO,HI");
      opt.expect_min = static_cast<float>(range[0]);
      opt.expect_max = static_cast<float>(range[1]);
    } else if (flag == "--metrics-out") {
      opt.metrics_out = next();
    } else if (flag == "--metrics-format") {
      opt.metrics_format = next();
      if (opt.metrics_format != "json" && opt.metrics_format != "prom") {
        Usage("--metrics-format must be json or prom");
      }
    } else if (flag == "--metrics-export-every") {
      opt.metrics_export_every = std::strtod(next().c_str(), nullptr);
      if (opt.metrics_export_every <= 0) {
        Usage("--metrics-export-every must be > 0 seconds");
      }
    } else if (flag == "--flight-out") {
      opt.flight_out = next();
    } else if (flag == "--trace-out") {
      opt.trace_out = next();
    } else if (flag == "--trace-sample-every") {
      opt.trace_sample_every = std::strtoull(next().c_str(), nullptr, 10);
      if (opt.trace_sample_every == 0) Usage("--trace-sample-every must be >= 1");
    } else if (flag == "--fault-plan") {
      opt.fault_plan = next();
    } else if (flag == "--fault-seed") {
      opt.fault_seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--fault-retries") {
      opt.fault_retries = static_cast<int>(std::strtol(next().c_str(), nullptr, 10));
    } else if (flag == "--no-cpu-fallback") {
      opt.cpu_fallback = false;
    } else if (flag == "--drain-deadline") {
      opt.drain_deadline = std::strtod(next().c_str(), nullptr);
    } else if (flag == "--streams") {
      opt.streams = std::strtoull(next().c_str(), nullptr, 10);
      if (opt.streams == 0) Usage("--streams must be >= 1");
    } else if (flag == "--tenants") {
      opt.tenants = std::strtoull(next().c_str(), nullptr, 10);
      if (opt.tenants == 0) Usage("--tenants must be >= 1");
    } else if (flag == "--shed-capacity") {
      opt.shed_capacity = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--shard-batch") {
      opt.shard_batch = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--phi") {
      opt.phis = ParseDoubleList(next());
    } else if (flag == "--support") {
      opt.support = std::strtod(next().c_str(), nullptr);
    } else if (flag == "--quantile-sketch") {
      opt.quantile_sketch = next();
      sketch::QuantileSketchKind kind;
      if (!sketch::ParseQuantileSketchKind(opt.quantile_sketch.c_str(), &kind)) {
        Usage("--quantile-sketch must be gk, gk-adaptive, or kll");
      }
    } else if (flag == "--summary-out") {
      opt.summary_out = next();
    } else if (flag == "--checkpoint-dir") {
      opt.checkpoint_dir = next();
    } else if (flag == "--checkpoint-every-windows") {
      opt.checkpoint_every_windows = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--report-out") {
      opt.report_out = next();
    } else if (flag == "--help" || flag == "-h") {
      Usage(nullptr);
    } else if (flag.size() >= 2 && flag[0] == '-' && flag[1] == '-') {
      Usage(("unknown flag " + flag).c_str());
    } else if (opt.command == "merge") {
      opt.shard_files.push_back(flag);
    } else {
      Usage(("unexpected argument " + flag).c_str());
    }
  }
  if (opt.restore && opt.checkpoint_dir.empty()) {
    Usage("restore needs --checkpoint-dir");
  }
  return opt;
}

core::Backend ParseBackend(const std::string& name) {
  if (name == "auto") return core::Backend::kAuto;
  if (name == "pbsn" || name == "gpu") return core::Backend::kGpuPbsn;
  if (name == "bitonic") return core::Backend::kGpuBitonic;
  if (name == "sample") return core::Backend::kSampleSort;
  if (name == "radix") return core::Backend::kCpuRadixMerge;
  if (name == "cpu") return core::Backend::kCpuQuicksort;
  if (name == "stdsort") return core::Backend::kCpuStdSort;
  Usage(("unknown backend " + name).c_str());
}

stream::Distribution ParseDistribution(const std::string& name) {
  if (name == "uniform") return stream::Distribution::kUniform;
  if (name == "zipf") return stream::Distribution::kZipf;
  if (name == "sorted") return stream::Distribution::kSorted;
  if (name == "network") return stream::Distribution::kNetworkFlows;
  if (name == "finance") return stream::Distribution::kFinanceTicks;
  Usage(("unknown distribution " + name).c_str());
}

std::vector<float> LoadStream(const CliOptions& opt) {
  if (!opt.input_path.empty()) {
    std::ifstream in(opt.input_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", opt.input_path.c_str());
      std::exit(1);
    }
    std::vector<float> values;
    float v = 0;
    while (in >> v) values.push_back(v);
    if (values.empty()) {
      std::fprintf(stderr, "error: no values in %s\n", opt.input_path.c_str());
      std::exit(1);
    }
    return values;
  }
  stream::StreamGenerator gen(
      {.distribution = ParseDistribution(opt.distribution), .seed = opt.seed});
  return gen.Take(opt.n);
}

/// Owns the optional sinks for one run and writes them out at the end.
struct ObsSinks {
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::TraceRecorder> trace;
  std::unique_ptr<obs::FlightRecorder> flight;
  // Declared after metrics (destruction order): the exporter's thread reads
  // the registry until Stop().
  std::unique_ptr<obs::MetricsExporter> exporter;

  explicit ObsSinks(const CliOptions& opt) {
    if (!opt.metrics_out.empty()) metrics = std::make_unique<obs::MetricsRegistry>();
    if (!opt.trace_out.empty()) {
      trace = std::make_unique<obs::TraceRecorder>(opt.trace_sample_every);
    }
    if (!opt.flight_out.empty()) {
      flight = std::make_unique<obs::FlightRecorder>();
      flight->set_dump_path(opt.flight_out);
    }
    if (opt.metrics_export_every > 0) {
      if (metrics == nullptr) Usage("--metrics-export-every needs --metrics-out");
      obs::MetricsExporterOptions export_opt;
      export_opt.path = opt.metrics_out;
      export_opt.period_seconds = opt.metrics_export_every;
      export_opt.format = opt.metrics_format == "prom" ? obs::MetricsFormat::kProm
                                                       : obs::MetricsFormat::kJson;
      exporter = std::make_unique<obs::MetricsExporter>(metrics.get(), export_opt);
    }
  }

  obs::Observability view() const { return {metrics.get(), trace.get(), flight.get()}; }

  void Write(const CliOptions& opt) const {
    if (exporter != nullptr) {
      // Stop() joins the background thread and publishes one final export in
      // the configured format, so there is nothing left to write here.
      exporter->Stop();
      std::fprintf(stderr, "# metrics (%s, exported %llu times) -> %s\n",
                   opt.metrics_format.c_str(),
                   static_cast<unsigned long long>(exporter->exports()),
                   opt.metrics_out.c_str());
    } else if (metrics != nullptr) {
      const bool ok =
          opt.metrics_format == "prom"
              ? obs::WritePrometheusFile(metrics->Snapshot(), opt.metrics_out.c_str())
              : metrics->WriteJsonFile(opt.metrics_out.c_str());
      if (!ok) {
        std::fprintf(stderr, "error: cannot write %s\n", opt.metrics_out.c_str());
        std::exit(1);
      }
      std::fprintf(stderr, "# metrics snapshot (%s) -> %s\n",
                   opt.metrics_format.c_str(), opt.metrics_out.c_str());
    }
    if (flight != nullptr) {
      // Crash paths (quarantine, drain failure, degrade) dump on their own;
      // when the run stayed clean, publish a shutdown dump so the artifact
      // always exists for inspection.
      if (flight->dumps() == 0) flight->Dump("shutdown");
      std::fprintf(stderr, "# flight recorder (%llu events) -> %s\n",
                   static_cast<unsigned long long>(flight->total_events()),
                   opt.flight_out.c_str());
    }
    if (trace != nullptr) {
      if (!trace->WriteJsonFile(opt.trace_out.c_str())) {
        std::fprintf(stderr, "error: cannot write %s\n", opt.trace_out.c_str());
        std::exit(1);
      }
      std::fprintf(stderr, "# trace (load in chrome://tracing or ui.perfetto.dev) -> %s\n",
                   opt.trace_out.c_str());
    }
  }
};

/// Routes the deterministic report lines — quantile answers, heavy hitters,
/// coverage, never timings — to stdout and, with --report-out, to a file.
/// The file is the artifact tools/crash_harness.py diffs byte-for-byte
/// between a killed-and-restored run and an uninterrupted one.
class ReportWriter {
 public:
  explicit ReportWriter(std::string path) : path_(std::move(path)) {}

  [[gnu::format(printf, 2, 3)]] void Printf(const char* format, ...) {
    std::va_list args;
    va_start(args, format);
    std::vprintf(format, args);
    va_end(args);
    if (path_.empty()) return;
    char line[1024];
    va_start(args, format);
    std::vsnprintf(line, sizeof line, format, args);
    va_end(args);
    lines_ += line;
  }

  /// Publishes the collected lines to --report-out (no-op without one).
  void Write() const {
    if (path_.empty()) return;
    std::ofstream out(path_, std::ios::trunc);
    if (!out || !out.write(lines_.data(), static_cast<std::streamsize>(lines_.size()))) {
      std::fprintf(stderr, "error: cannot write %s\n", path_.c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "# report -> %s\n", path_.c_str());
  }

 private:
  std::string path_;
  std::string lines_;
};

core::Options MakeCoreOptions(const CliOptions& opt, const ObsSinks& sinks) {
  core::Options core_opt;
  core_opt.epsilon = opt.epsilon;
  core_opt.backend = ParseBackend(opt.backend);
  core_opt.sliding_window = opt.sliding;
  core_opt.num_sort_workers = opt.workers;
  core_opt.max_windows_in_flight = opt.in_flight;
  core_opt.expected_min_value = opt.expect_min;
  core_opt.expected_max_value = opt.expect_max;
  sketch::ParseQuantileSketchKind(opt.quantile_sketch.c_str(),
                                  &core_opt.quantile_sketch);  // validated in ParseArgs
  core_opt.obs = sinks.view();
  if (!opt.fault_plan.empty()) {
    core::StatusOr<core::FaultPlan> plan =
        core::FaultPlan::Parse(opt.fault_plan, opt.fault_seed);
    if (!plan.ok()) Usage(plan.status().message().c_str());
    core_opt.fault.plan = std::move(*plan);
  }
  core_opt.fault.max_retries = opt.fault_retries;
  core_opt.fault.cpu_fallback = opt.cpu_fallback;
  core_opt.fault.drain_deadline_seconds = opt.drain_deadline;
  core_opt.checkpoint_dir = opt.checkpoint_dir;
  core_opt.checkpoint_every_windows = opt.checkpoint_every_windows;
  return core_opt;
}

/// Restore-command front half for the estimator modes: resumes from the
/// newest usable snapshot, or — when the directory holds none — falls back
/// to a fresh run (the first run after provisioning). Snapshot corruption
/// and configuration mismatches are fatal. Returns null on the fresh-start
/// fallback and sets *replay_from on success.
template <typename Estimator>
std::unique_ptr<Estimator> TryRestore(const core::Options& core_opt,
                                      std::size_t stream_size,
                                      std::size_t* replay_from) {
  core::StatusOr<std::unique_ptr<Estimator>> restored = Estimator::Restore(core_opt);
  if (!restored.ok()) {
    if (restored.status().code() == core::Status::Code::kFailedPrecondition) {
      std::fprintf(stderr, "# restore: %s; starting fresh\n",
                   restored.status().message().c_str());
      return nullptr;
    }
    std::fprintf(stderr, "error: restore failed: %s\n",
                 restored.status().message().c_str());
    std::exit(1);
  }
  std::unique_ptr<Estimator> estimator = std::move(restored).value();
  const std::uint64_t observed = estimator->observed_length();
  if (observed > stream_size) {
    std::fprintf(stderr,
                 "error: checkpoint watermark %llu exceeds the %zu-element input; "
                 "restore must replay the same stream the checkpoint was cut from\n",
                 static_cast<unsigned long long>(observed), stream_size);
    std::exit(1);
  }
  *replay_from = static_cast<std::size_t>(observed);
  std::fprintf(stderr, "# restored at watermark %llu; replaying %zu elements\n",
               static_cast<unsigned long long>(observed), stream_size - *replay_from);
  return estimator;
}

/// Aborts with the Status message when a stream operation failed (e.g. the
/// pipeline hit its drain deadline under a stall plan).
void CheckStream(const core::Status& status, const char* what) {
  if (status.ok()) return;
  std::fprintf(stderr, "error: %s failed: %s\n", what, status.message().c_str());
  std::exit(1);
}

/// One-line recovery summary, printed only when a fault plan was active.
void PrintFaultSummary(const CliOptions& opt, const core::FaultStats& stats) {
  if (opt.fault_plan.empty()) return;
  std::printf("# faults: %llu injected, %llu sort retries, %llu cpu fallbacks, "
              "%llu windows quarantined (%llu elements dropped)\n",
              static_cast<unsigned long long>(stats.faults_injected),
              static_cast<unsigned long long>(stats.sort_retries),
              static_cast<unsigned long long>(stats.cpu_fallbacks),
              static_cast<unsigned long long>(stats.windows_quarantined),
              static_cast<unsigned long long>(stats.elements_dropped));
}

void WriteSummaryFile(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out ||
      !out.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()))) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "# mergeable summary (%zu bytes) -> %s\n", bytes.size(),
               path.c_str());
}

std::vector<std::uint8_t> ReadSummaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return bytes;
}

/// Unwraps a factory result, or reports the configuration error and exits 2.
template <typename T>
std::unique_ptr<T> CreateOrDie(core::StatusOr<std::unique_ptr<T>> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: invalid configuration: %s\n",
                 result.status().message().c_str());
    std::exit(2);
  }
  return std::move(result).value();
}

int RunQuantiles(const CliOptions& opt) {
  const auto stream = LoadStream(opt);
  const ObsSinks sinks(opt);
  ReportWriter report_out(opt.report_out);
  const core::Options core_opt = MakeCoreOptions(opt, sinks);
  std::size_t replay_from = 0;
  std::unique_ptr<core::QuantileEstimator> qe;
  if (opt.restore) {
    qe = TryRestore<core::QuantileEstimator>(core_opt, stream.size(), &replay_from);
  }
  if (qe == nullptr) qe = CreateOrDie(core::QuantileEstimator::Create(core_opt));
  Timer timer;
  CheckStream(qe->ObserveBatch(std::span<const float>(stream).subspan(replay_from)),
              "observe");
  CheckStream(qe->Flush(), "flush");
  std::printf("# %zu values, epsilon %g, backend %s%s, workers %d\n", stream.size(),
              opt.epsilon, opt.backend.c_str(), opt.sliding != 0 ? " (sliding)" : "",
              opt.workers);
  for (double phi : opt.phis) {
    if (phi <= 0.0 || phi > 1.0) continue;
    const core::QuantileReport report = qe->Quantile(phi);
    report_out.Printf("q%-8g %-12g (rank +- %llu of %llu)\n", phi, report.value,
                      static_cast<unsigned long long>(report.rank_error_bound),
                      static_cast<unsigned long long>(report.window_coverage));
  }
  std::printf("# summary: %zu tuples; simulated-2005 %.1f ms; wall %.2f s\n",
              qe->summary_size(), qe->SimulatedSeconds() * 1e3, timer.ElapsedSeconds());
  PrintFaultSummary(opt, qe->fault_stats());
  if (qe->checkpoints() != 0) {
    std::fprintf(stderr, "# checkpoints: %llu -> %s\n",
                 static_cast<unsigned long long>(qe->checkpoints()),
                 opt.checkpoint_dir.c_str());
  }
  if (!opt.summary_out.empty()) {
    const auto bytes = qe->SerializedSummary();
    if (!bytes.ok()) {
      std::fprintf(stderr, "error: summary export failed: %s\n",
                   bytes.status().message().c_str());
      std::exit(2);
    }
    WriteSummaryFile(opt.summary_out, *bytes);
  }
  qe->ExportMetrics();
  sinks.Write(opt);
  report_out.Write();
  return 0;
}

int RunFrequencies(const CliOptions& opt) {
  const auto stream = LoadStream(opt);
  const ObsSinks sinks(opt);
  ReportWriter report_out(opt.report_out);
  const core::Options core_opt = MakeCoreOptions(opt, sinks);
  std::size_t replay_from = 0;
  std::unique_ptr<core::FrequencyEstimator> fe;
  if (opt.restore) {
    fe = TryRestore<core::FrequencyEstimator>(core_opt, stream.size(), &replay_from);
  }
  if (fe == nullptr) fe = CreateOrDie(core::FrequencyEstimator::Create(core_opt));
  Timer timer;
  CheckStream(fe->ObserveBatch(std::span<const float>(stream).subspan(replay_from)),
              "observe");
  CheckStream(fe->Flush(), "flush");
  std::printf("# %zu values, epsilon %g, support %g, backend %s%s, workers %d\n",
              stream.size(), opt.epsilon, opt.support, opt.backend.c_str(),
              opt.sliding != 0 ? " (sliding)" : "", opt.workers);
  const core::FrequencyReport report = fe->HeavyHitters(opt.support);
  for (const auto& item : report.items) {
    report_out.Printf("%-12g >= %llu\n", item.value,
                      static_cast<unsigned long long>(item.estimate));
  }
  report_out.Printf("# undercount bound %llu over %llu covered elements\n",
                    static_cast<unsigned long long>(report.error_bound),
                    static_cast<unsigned long long>(report.window_coverage));
  std::printf("# summary: %zu entries; simulated-2005 %.1f ms; wall %.2f s\n",
              fe->summary_size(), fe->SimulatedSeconds() * 1e3, timer.ElapsedSeconds());
  PrintFaultSummary(opt, fe->fault_stats());
  if (fe->checkpoints() != 0) {
    std::fprintf(stderr, "# checkpoints: %llu -> %s\n",
                 static_cast<unsigned long long>(fe->checkpoints()),
                 opt.checkpoint_dir.c_str());
  }
  if (!opt.summary_out.empty()) {
    // The estimator's internal summary is not mergeable across the f16
    // quantization boundary; export a same-epsilon Misra-Gries summary built
    // from the raw stream instead — exactly what `merge` consumes.
    sketch::MisraGries mg(opt.epsilon);
    mg.ObserveBatch(stream);
    std::vector<std::uint8_t> bytes;
    const core::Status status = sketch::SerializeSummary(mg, &bytes);
    if (!status.ok()) {
      std::fprintf(stderr, "error: summary export failed: %s\n",
                   status.message().c_str());
      std::exit(2);
    }
    WriteSummaryFile(opt.summary_out, bytes);
  }
  fe->ExportMetrics();
  sinks.Write(opt);
  report_out.Write();
  return 0;
}

int RunMerge(const CliOptions& opt) {
  if (opt.shard_files.empty()) Usage("merge needs at least one shard file");

  // Dispatch on the first shard's type tag; every shard must agree (the
  // combiners enforce it).
  const std::vector<std::uint8_t> first = ReadSummaryFile(opt.shard_files.front());
  const auto type = sketch::PeekSketchType(first);
  if (!type.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", opt.shard_files.front().c_str(),
                 type.status().message().c_str());
    std::exit(1);
  }

  const bool quantile = *type == sketch::SketchType::kGkSummary ||
                        *type == sketch::SketchType::kKll;
  sketch::QuantileShardCombiner quantiles;
  sketch::FrequencyShardCombiner frequencies;
  for (const std::string& path : opt.shard_files) {
    const std::vector<std::uint8_t> bytes = ReadSummaryFile(path);
    const core::Status status =
        quantile ? quantiles.AddShard(bytes) : frequencies.AddShard(bytes);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                   status.message().c_str());
      std::exit(1);
    }
  }

  std::printf("# merged %zu %s shard summaries\n", opt.shard_files.size(),
              sketch::SketchTypeName(*type));
  std::vector<std::uint8_t> merged_bytes;
  if (quantile) {
    for (double phi : opt.phis) {
      if (phi <= 0.0 || phi > 1.0) continue;
      const core::QuantileReport report = quantiles.Quantile(phi);
      std::printf("q%-8g %-12g (rank +- %llu of %llu)\n", phi, report.value,
                  static_cast<unsigned long long>(report.rank_error_bound),
                  static_cast<unsigned long long>(report.window_coverage));
    }
    if (!opt.summary_out.empty()) {
      CheckStream(quantiles.AppendMergedSummary(&merged_bytes), "summary export");
    }
  } else {
    const auto report = frequencies.HeavyHitters(opt.support);
    if (!report.ok()) {
      std::fprintf(stderr, "error: heavy hitters: %s\n",
                   report.status().message().c_str());
      std::exit(1);
    }
    for (const auto& item : report->items) {
      std::printf("%-12g >= %llu\n", item.value,
                  static_cast<unsigned long long>(item.estimate));
    }
    std::printf("# undercount bound %llu over %llu covered elements\n",
                static_cast<unsigned long long>(report->error_bound),
                static_cast<unsigned long long>(report->window_coverage));
    if (!opt.summary_out.empty()) {
      CheckStream(frequencies.AppendMergedSummary(&merged_bytes), "summary export");
    }
  }
  if (!opt.summary_out.empty()) WriteSummaryFile(opt.summary_out, merged_bytes);
  return 0;
}

int RunSort(const CliOptions& opt) {
  auto stream = LoadStream(opt);
  const ObsSinks sinks(opt);
  const core::Options core_opt = MakeCoreOptions(opt, sinks);
  const core::Status status = core_opt.Validate();
  if (!status.ok()) {
    std::fprintf(stderr, "error: invalid configuration: %s\n",
                 status.message().c_str());
    std::exit(2);
  }
  core::SortEngine engine(core_opt);
  // The decorator gives the sort command the same spans/counters as the
  // estimator paths (a no-op pass-through when no sink is wired).
  core::TracingSorter sorter(&engine.sorter(), engine.device(), sinks.view(), "sort");
  Timer timer;
  sorter.Sort(stream);
  const auto& run = sorter.last_run();
  std::printf("sorted %zu values with %s\n", stream.size(), sorter.name());
  std::printf("  comparisons      : %llu\n",
              static_cast<unsigned long long>(run.comparisons));
  std::printf("  simulated-2005   : %.2f ms (device %.2f, transfer %.2f, merge %.2f)\n",
              run.simulated_seconds * 1e3, run.sim_device_seconds * 1e3,
              run.sim_transfer_seconds * 1e3, run.sim_merge_seconds * 1e3);
  std::printf("  simulator wall   : %.2f s\n", timer.ElapsedSeconds());
  sinks.Write(opt);
  return 0;
}

int RunServe(const CliOptions& opt) {
  const ObsSinks sinks(opt);
  ReportWriter report_out(opt.report_out);
  service::ServiceConfig config;
  config.backend = ParseBackend(opt.backend);
  config.num_workers = opt.workers;
  config.max_batches_in_flight = opt.in_flight;
  if (opt.shed_capacity > 0) {
    config.admission = stream::AdmissionPolicy::kShed;
    config.shard_ingress_capacity = opt.shed_capacity;
  }
  config.shard_batch_elements = opt.shard_batch;
  config.obs = sinks.view();

  // `restore serve`: rebuild the whole service from the newest usable
  // snapshot; a directory with no usable checkpoint means the first run
  // after provisioning, so fall back to a fresh service.
  std::unique_ptr<service::StreamService> service;
  bool restored = false;
  if (opt.restore) {
    auto result = service::StreamService::RestoreFrom(config, opt.checkpoint_dir);
    if (result.ok()) {
      service = std::move(result).value();
      restored = true;
      if (service->num_streams() != opt.streams) {
        std::fprintf(stderr,
                     "error: checkpoint holds %zu streams but --streams is %llu; "
                     "restore must replay the checkpointed topology\n",
                     service->num_streams(),
                     static_cast<unsigned long long>(opt.streams));
        std::exit(1);
      }
      std::fprintf(stderr, "# restored %zu streams from %s\n",
                   service->num_streams(), opt.checkpoint_dir.c_str());
    } else if (result.status().code() == core::Status::Code::kFailedPrecondition) {
      std::fprintf(stderr, "# restore: %s; starting fresh\n",
                   result.status().message().c_str());
    } else {
      std::fprintf(stderr, "error: restore failed: %s\n",
                   result.status().message().c_str());
      std::exit(1);
    }
  }
  if (service == nullptr) {
    service = CreateOrDie(service::StreamService::Create(config));
  }

  service::StreamConfig stream_config;
  stream_config.epsilon = opt.epsilon;
  stream_config.sliding_window = opt.sliding;
  sketch::ParseQuantileSketchKind(opt.quantile_sketch.c_str(),
                                  &stream_config.quantile_sketch);
  std::vector<service::StreamKey> keys;
  keys.reserve(opt.streams);
  Timer register_timer;
  for (std::uint64_t i = 0; i < opt.streams; ++i) {
    keys.push_back({i % opt.tenants, i});
    if (restored) continue;  // RestoreFrom re-registered the same topology
    const core::Status status = service->Register(keys.back(), stream_config);
    if (!status.ok()) {
      std::fprintf(stderr, "error: register failed: %s\n", status.message().c_str());
      std::exit(2);
    }
  }
  const double register_seconds = register_timer.ElapsedSeconds();

  // Restored streams skip everything the checkpoint already covers: the
  // replay cursor is the per-stream offered count (admitted + shed), so the
  // generator is drawn in the original order but only the un-checkpointed
  // suffix is re-appended.
  std::vector<std::uint64_t> offered(keys.size(), 0);
  if (restored) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const auto cursor = service->OfferedLength(keys[i]);
      CheckStream(cursor.status(), "restore cursor");
      if (*cursor > opt.n) {
        std::fprintf(stderr,
                     "error: stream %zu checkpointed at %llu elements but --n is %zu\n",
                     i, static_cast<unsigned long long>(*cursor), opt.n);
        std::exit(1);
      }
      offered[i] = *cursor;
    }
  }

  // Periodic service checkpoints, cut at --checkpoint-every-windows merged
  // windows (checked between ingest rounds; Checkpoint drains in-flight
  // batches itself, so each snapshot is a consistent cut).
  std::unique_ptr<durable::CheckpointWriter> checkpointer;
  if (!opt.checkpoint_dir.empty()) {
    checkpointer = std::make_unique<durable::CheckpointWriter>(opt.checkpoint_dir);
    checkpointer->SetObservability(sinks.view());
  }
  std::uint64_t checkpointed_windows = restored ? service->stats().windows_merged : 0;

  // Round-robin ingest in small chunks: the worst case for a per-stream
  // pipeline (tiny writes across many streams) and exactly the pattern the
  // shard-by-key batching is built to amortize. --n is the per-stream length.
  stream::StreamGenerator gen(
      {.distribution = ParseDistribution(opt.distribution), .seed = opt.seed});
  constexpr std::size_t kChunk = 64;
  std::vector<float> chunk(kChunk);
  std::size_t remaining_rounds = (opt.n + kChunk - 1) / kChunk;
  Timer timer;
  for (std::size_t round = 0; round < remaining_rounds; ++round) {
    const std::size_t take =
        std::min(kChunk, opt.n - round * kChunk);
    const std::uint64_t begin = static_cast<std::uint64_t>(round) * kChunk;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      gen.Fill(std::span<float>(chunk.data(), take));
      if (offered[i] >= begin + take) continue;  // checkpoint already covers it
      const std::size_t skip =
          offered[i] > begin ? static_cast<std::size_t>(offered[i] - begin) : 0;
      const auto admitted = service->Append(
          keys[i], std::span<const float>(chunk.data() + skip, take - skip));
      CheckStream(admitted.status(), "append");
    }
    if (checkpointer != nullptr && opt.checkpoint_every_windows > 0) {
      const std::uint64_t merged = service->stats().windows_merged;
      if (merged - checkpointed_windows >= opt.checkpoint_every_windows) {
        CheckStream(service->Checkpoint(checkpointer.get()), "checkpoint");
        checkpointed_windows = service->stats().windows_merged;
      }
    }
  }
  CheckStream(service->FlushAll(), "flush");
  const double ingest_seconds = timer.ElapsedSeconds();

  const service::ServiceStats stats = service->stats();
  std::printf("# %llu streams x %zu elements across %llu tenants, backend %s, workers %d\n",
              static_cast<unsigned long long>(opt.streams), opt.n,
              static_cast<unsigned long long>(opt.tenants), opt.backend.c_str(),
              opt.workers);
  std::printf("registered %llu streams in %.3f s\n",
              static_cast<unsigned long long>(stats.streams), register_seconds);
  std::printf("ingested   %llu elements in %.2f s (%.2f M elements/s aggregate)\n",
              static_cast<unsigned long long>(stats.elements_observed), ingest_seconds,
              static_cast<double>(stats.elements_observed) / ingest_seconds / 1e6);
  std::printf("dispatched %llu shard batches (%llu windows merged, %d shards)\n",
              static_cast<unsigned long long>(stats.batches_dispatched),
              static_cast<unsigned long long>(stats.windows_merged),
              service->num_shards());
  if (stats.elements_shed != 0) {
    report_out.Printf("shed       %llu elements at the ingress (error bounds widened)\n",
                      static_cast<unsigned long long>(stats.elements_shed));
  }
  if (checkpointer != nullptr && checkpointer->commits() != 0) {
    std::fprintf(stderr, "# checkpoints: %llu -> %s\n",
                 static_cast<unsigned long long>(checkpointer->commits()),
                 opt.checkpoint_dir.c_str());
  }

  // Snapshot every stream with one batch query per phi.
  Timer query_timer;
  for (double phi : opt.phis) {
    if (phi <= 0.0 || phi > 1.0) continue;
    const auto reports = service->BatchQuantiles(keys, phi);
    const service::StreamKey& probe = keys[opt.streams / 2];
    report_out.Printf(
        "q%-8g %-12g (stream %llu/%llu; rank +- %llu of %llu)\n", phi,
        reports[opt.streams / 2].value,
        static_cast<unsigned long long>(probe.tenant),
        static_cast<unsigned long long>(probe.stream),
        static_cast<unsigned long long>(reports[opt.streams / 2].rank_error_bound),
        static_cast<unsigned long long>(reports[opt.streams / 2].window_coverage));
  }
  std::printf("# batch queries: %zu reports in %.3f s\n",
              opt.phis.size() * keys.size(), query_timer.ElapsedSeconds());
  sinks.Write(opt);
  report_out.Write();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = ParseArgs(argc, argv);
  if (opt.command == "quantiles") return RunQuantiles(opt);
  if (opt.command == "frequencies") return RunFrequencies(opt);
  if (opt.command == "sort") return RunSort(opt);
  if (opt.command == "serve") return RunServe(opt);
  if (opt.command == "merge") return RunMerge(opt);
  Usage(("unknown command " + opt.command).c_str());
}
